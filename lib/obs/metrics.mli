(** Metrics registry: named counters, gauges and log-scale histograms.

    Metrics are registered on first use; re-requesting a name returns
    the same instrument ([Invalid_argument] if the kinds disagree).
    Handles are plain records, so hot call sites can look one up once
    and update it without further registry traffic. *)

type t

val create : unit -> t

(** {1 Counters} *)

type counter

val counter : t -> string -> counter
(** The counter of that name, registered on first use. *)

val incr : ?by:int -> counter -> unit
(** Add [by] (default 1). *)

val counter_value : counter -> int
(** Current total. *)

(** {1 Gauges} *)

type gauge

val gauge : t -> string -> gauge
(** The gauge of that name, registered on first use. *)

val set : ?x:float -> gauge -> float -> unit
(** Record a sample; [x] defaults to the sample index, so repeated [set]
    calls trace a curve (e.g. coverage over committed vectors). *)

val last : gauge -> float option
(** Most recent sample; [None] before the first [set]. *)

val samples : gauge -> (float * float) list
(** All [(x, value)] samples, oldest first. *)

(** {1 Histograms} *)

type histogram

val histogram : t -> string -> histogram
(** The histogram of that name, registered on first use. *)

val observe : histogram -> int -> unit
(** Record one observation. *)

val hist : histogram -> Histogram.t
(** The underlying {!Histogram.t} (for reading bucket data). *)

(** {1 Lookup} *)

val find_counter : t -> string -> int option
(** Current total of a counter; [None] when never registered. *)

val find_gauge : t -> string -> float option
(** Latest sample of a gauge; [None] when never registered or empty. *)

val find_histogram : t -> string -> Histogram.t option
(** The histogram of that name; [None] when never registered. *)

val names : t -> string list
(** Every registered metric name, sorted. *)

val reset : t -> unit
(** Drop every registered metric. *)

(** {1 Export} *)

val to_jsonl : t -> string
(** One JSON object per line: counters and histograms one line each,
    gauges one line per sample. *)

val to_table : t -> string
(** Human-readable summary table. *)
