(** Metrics registry: named counters, gauges and log-scale histograms.

    Metrics are registered on first use; re-requesting a name returns
    the same instrument ([Invalid_argument] if the kinds disagree).
    Handles are plain records, so hot call sites can look one up once
    and update it without further registry traffic. *)

type t

val create : unit -> t

(** {1 Counters} *)

type counter

val counter : t -> string -> counter
val incr : ?by:int -> counter -> unit
val counter_value : counter -> int

(** {1 Gauges} *)

type gauge

val gauge : t -> string -> gauge

val set : ?x:float -> gauge -> float -> unit
(** Record a sample; [x] defaults to the sample index, so repeated [set]
    calls trace a curve (e.g. coverage over committed vectors). *)

val last : gauge -> float option
val samples : gauge -> (float * float) list

(** {1 Histograms} *)

type histogram

val histogram : t -> string -> histogram
val observe : histogram -> int -> unit
val hist : histogram -> Histogram.t

(** {1 Lookup} *)

val find_counter : t -> string -> int option
val find_gauge : t -> string -> float option
val find_histogram : t -> string -> Histogram.t option
val names : t -> string list

val reset : t -> unit

(** {1 Export} *)

val to_jsonl : t -> string
(** One JSON object per line: counters and histograms one line each,
    gauges one line per sample. *)

val to_table : t -> string
(** Human-readable summary table. *)
