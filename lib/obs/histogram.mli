(** Log-scale (power-of-two bucket) histogram over non-negative ints.

    Bucket 0 holds the value 0; bucket [i >= 1] the range
    [[2^(i-1), 2^i - 1]].  Negative observations clamp to 0; [max_int]
    lands in the last bucket. *)

type t

val create : unit -> t
(** An empty histogram. *)

val observe : t -> int -> unit
(** Record one observation (clamped to non-negative). *)

val count : t -> int
(** Number of observations recorded. *)

val sum : t -> float
(** Sum of all observed values. *)

val min_value : t -> int
(** Smallest observation; 0 when empty. *)

val max_value : t -> int
(** Largest observation; 0 when empty. *)

val mean : t -> float
(** [sum / count]; 0 when empty. *)

val bucket_index : int -> int
(** The bucket an observation of this value lands in. *)

val bucket_bounds : int -> int * int
(** [bucket_bounds i] is the inclusive value range of bucket [i]. *)

val nonempty_buckets : t -> (int * int * int) list
(** [(lo, hi, count)] per populated bucket, ascending. *)

val reset : t -> unit
(** Drop every observation. *)

val pp : Format.formatter -> t -> unit
(** Count/min/mean/max summary plus the populated buckets. *)
