(** Log-scale (power-of-two bucket) histogram over non-negative ints.

    Bucket 0 holds the value 0; bucket [i >= 1] the range
    [[2^(i-1), 2^i - 1]].  Negative observations clamp to 0; [max_int]
    lands in the last bucket. *)

type t

val create : unit -> t
val observe : t -> int -> unit

val count : t -> int
val sum : t -> float
val min_value : t -> int
(** 0 when empty. *)

val max_value : t -> int
val mean : t -> float

val bucket_index : int -> int
val bucket_bounds : int -> int * int
(** [bucket_bounds i] is the inclusive value range of bucket [i]. *)

val nonempty_buckets : t -> (int * int * int) list
(** [(lo, hi, count)] per populated bucket, ascending. *)

val reset : t -> unit
val pp : Format.formatter -> t -> unit
