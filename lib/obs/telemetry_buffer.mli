(** Per-domain telemetry buffers: replayable op logs that let [Par]
    worker domains record spans, counter deltas, gauge/histogram samples
    and events without touching the single-domain tracer/registry.  The
    dispatching domain installs one buffer per job
    ([Obs.with_buffer]) and merges them back in job order after the
    fan-in ([Obs.merge_buffer]) — see [docs/OBSERVABILITY.md]. *)

type t

type parent = Local of int | Global of int
(** A span's causal parent: another span of the same buffer ([Local],
    buffer-local id) or an already-merged tracer span ([Global]). *)

type span_op = {
  b_id : int;
  b_parent : parent option;
  b_name : string;
  b_cat : string;
  b_track : string;
  b_depth : int;
  b_start_us : float;
  b_dur_us : float;
  b_sim_start_ns : int option;
  b_sim_dur_ns : int option;
  b_args : (string * Json.t) list;
}

type op =
  | Span of span_op
  | Counter of { name : string; by : int }
  | Gauge of { name : string; x : float option; value : float }
  | Observe of { name : string; value : int }
  | Ev of Event.t

type open_span

val create : unit -> t
(** An empty buffer. *)

val begin_span :
  t ->
  ?track:string ->
  ?cat:string ->
  ?args:(string * Json.t) list ->
  ?sim_ns:int ->
  string ->
  open_span
(** Open a span; its parent is the innermost span still open in this
    buffer (one dynamic stack per buffer — a buffered job is one fiber,
    so dynamic nesting is causality even across tracks). *)

val end_span :
  t -> ?args:(string * Json.t) list -> ?sim_ns:int -> open_span -> unit
(** Close the span and record it as an op. *)

val open_span_id : open_span -> int
(** The buffer-local id of an open span. *)

val counter : t -> ?by:int -> string -> unit
val gauge : t -> ?x:float -> string -> float -> unit
val observe : t -> string -> int -> unit
val event : t -> Event.t -> unit

val ops : t -> op list
(** Recorded ops, oldest first. *)

val span_ids : t -> int
(** Number of buffer-local span ids allocated (open spans included). *)

val op_count : t -> int
(** Number of recorded ops. *)

val lane_track : lane:int -> string -> top_level:bool -> string
(** The merge-time track renaming: top-level spans land on ["lane<k>"],
    nested spans on ["lane<k>/<original track>"]. *)

val absorb : t -> lane:int -> ?parent:int -> t -> unit
(** [absorb outer ~lane ?parent inner] appends [inner]'s ops to
    [outer], offsetting local span ids, lane-prefixing tracks, and
    parenting [inner]'s top-level spans to [parent] (a buffer-local id
    of an [outer] span) — the nested-Par merge. *)
