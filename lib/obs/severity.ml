(* Event severities, ordered from chattiest to gravest. *)

type t = Debug | Info | Warn | Error

let to_int = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

let to_string = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let of_string = function
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" -> Some Warn
  | "error" -> Some Error
  | _ -> None

let compare a b = Int.compare (to_int a) (to_int b)
let pp fmt s = Fmt.string fmt (to_string s)
