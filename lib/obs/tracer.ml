(* Nestable timed spans plus instant markers, exported in the Chrome
   trace_event JSON format so a whole flow run opens as a timeline in
   chrome://tracing or Perfetto.

   Spans carry the host clock (the [ts]/[dur] fields, microseconds) and,
   when begun from inside a simulation, the simulated clock (in the
   [args]).  Spans live on named tracks, one Chrome "thread" per track:
   the default track carries the sequential flow (levels, verifications,
   solver calls), while each bus master gets its own track so that the
   interleaved transactions of concurrent simulation processes still
   render as properly nested rectangles.

   Every span has a timeline-unique [id] and an optional causal
   [parent]: by default the innermost still-open span on the same track,
   or an explicit [?parent] for cross-track causality (a Par dispatch
   span parenting the job spans that ran on worker lanes).  Cross-track
   parent links are exported as Chrome flow events ("s"/"f"), so
   Perfetto draws the dispatch→job arrows.  [reserve_ids] and
   [add_completed] exist for [Obs.merge_buffer], which replays spans
   recorded off-domain into this timeline. *)

type track = {
  tid : int;
  label : string;
  mutable depth : int;
  mutable open_ids : int list;  (* innermost first *)
}

type span = {
  s_id : int;
  s_parent : int option;
  s_name : string;
  s_cat : string;
  s_track : track;
  s_depth : int;
  s_start_us : float;
  s_sim_start_ns : int option;
  s_args : (string * Json.t) list;
}

type completed = {
  id : int;
  parent : int option;
  name : string;
  cat : string;
  track : string;
  depth : int;
  start_us : float;
  dur_us : float;
  sim_start_ns : int option;
  sim_dur_ns : int option;
  args : (string * Json.t) list;
}

type instant = {
  i_name : string;
  i_severity : Severity.t;
  i_ts_us : float;
  i_track : track;
  i_sim_ns : int option;
  i_args : (string * Json.t) list;
}

(* one sample of a Chrome counter track (ph "C") *)
type counter_sample = { c_name : string; c_ts_us : float; c_value : float }

type t = {
  epoch_us : float;
  tracks : (string, track) Hashtbl.t;
  mutable next_tid : int;
  mutable next_span_id : int;
  mutable completed : completed list;  (* newest first *)
  mutable instants : instant list;
  mutable counters : counter_sample list;  (* newest first *)
  mutable completed_count : int;
}

let default_track = "flow"

let now_us () = Unix.gettimeofday () *. 1e6

let create () =
  {
    epoch_us = now_us ();
    tracks = Hashtbl.create 8;
    next_tid = 1;
    next_span_id = 1;
    completed = [];
    instants = [];
    counters = [];
    completed_count = 0;
  }

let track_of t label =
  match Hashtbl.find_opt t.tracks label with
  | Some tr -> tr
  | None ->
      let tr = { tid = t.next_tid; label; depth = 0; open_ids = [] } in
      t.next_tid <- t.next_tid + 1;
      Hashtbl.add t.tracks label tr;
      tr

let reserve_ids t n =
  let base = t.next_span_id in
  t.next_span_id <- base + n;
  base

let begin_span t ?(track = default_track) ?(cat = "app") ?(args = [])
    ?sim_ns ?parent name =
  let tr = track_of t track in
  let id = t.next_span_id in
  t.next_span_id <- id + 1;
  let parent =
    match parent with
    | Some _ as p -> p
    | None -> ( match tr.open_ids with [] -> None | p :: _ -> Some p)
  in
  let s =
    {
      s_id = id;
      s_parent = parent;
      s_name = name;
      s_cat = cat;
      s_track = tr;
      s_depth = tr.depth;
      s_start_us = now_us ();
      s_sim_start_ns = sim_ns;
      s_args = args;
    }
  in
  tr.depth <- tr.depth + 1;
  tr.open_ids <- id :: tr.open_ids;
  s

let span_id s = s.s_id

let end_span t ?(args = []) ?sim_ns s =
  let tr = s.s_track in
  if tr.depth > 0 then tr.depth <- tr.depth - 1;
  tr.open_ids <- List.filter (fun id -> id <> s.s_id) tr.open_ids;
  let sim_dur_ns =
    match (s.s_sim_start_ns, sim_ns) with
    | Some a, Some b -> Some (b - a)
    | _ -> None
  in
  t.completed <-
    {
      id = s.s_id;
      parent = s.s_parent;
      name = s.s_name;
      cat = s.s_cat;
      track = tr.label;
      depth = s.s_depth;
      start_us = s.s_start_us;
      dur_us = now_us () -. s.s_start_us;
      sim_start_ns = s.s_sim_start_ns;
      sim_dur_ns;
      args = s.s_args @ args;
    }
    :: t.completed;
  t.completed_count <- t.completed_count + 1

let add_completed t (c : completed) =
  (* used by the merge path: ids must come from [reserve_ids] *)
  ignore (track_of t c.track);
  t.completed <- c :: t.completed;
  t.completed_count <- t.completed_count + 1

let with_span t ?track ?cat ?args ?sim_ns name f =
  let s = begin_span t ?track ?cat ?args ?sim_ns name in
  match f () with
  | v ->
      end_span t s;
      v
  | exception e ->
      end_span t s;
      raise e

let instant t ?(track = default_track) ?(severity = Severity.Info)
    ?(args = []) ?sim_ns ?ts_us name =
  t.instants <-
    {
      i_name = name;
      i_severity = severity;
      i_ts_us = (match ts_us with Some ts -> ts | None -> now_us ());
      i_track = track_of t track;
      i_sim_ns = sim_ns;
      i_args = args;
    }
    :: t.instants

let counter_sample t ?ts_us name value =
  t.counters <-
    {
      c_name = name;
      c_ts_us = (match ts_us with Some ts -> ts | None -> now_us ());
      c_value = value;
    }
    :: t.counters

let span_count t = t.completed_count

let completed_spans t = List.rev t.completed

let spans_with_cat t cat =
  List.filter (fun c -> String.equal c.cat cat) (completed_spans t)

(* --- Chrome trace_event export --- *)

let sim_args sim_start_ns sim_dur_ns =
  (match sim_start_ns with
  | Some ns -> [ ("sim_ns", Json.Int ns) ]
  | None -> [])
  @
  match sim_dur_ns with
  | Some ns -> [ ("sim_dur_ns", Json.Int ns) ]
  | None -> []

let to_chrome_json t =
  let rel us = us -. t.epoch_us in
  let id_args (c : completed) =
    ("span_id", Json.Int c.id)
    ::
    (match c.parent with
    | Some p -> [ ("parent_span_id", Json.Int p) ]
    | None -> [])
  in
  let span_event (c : completed) =
    Json.Obj
      [
        ("name", Json.Str c.name);
        ("cat", Json.Str c.cat);
        ("ph", Json.Str "X");
        ("pid", Json.Int 1);
        ("tid", Json.Int (track_of t c.track).tid);
        ("ts", Json.Float (rel c.start_us));
        ("dur", Json.Float c.dur_us);
        ( "args",
          Json.Obj (id_args c @ sim_args c.sim_start_ns c.sim_dur_ns @ c.args)
        );
      ]
  in
  let instant_event (i : instant) =
    Json.Obj
      [
        ("name", Json.Str i.i_name);
        ("cat", Json.Str (Severity.to_string i.i_severity));
        ("ph", Json.Str "i");
        ("s", Json.Str "t");
        ("pid", Json.Int 1);
        ("tid", Json.Int i.i_track.tid);
        ("ts", Json.Float (rel i.i_ts_us));
        ("args", Json.Obj (sim_args i.i_sim_ns None @ i.i_args));
      ]
  in
  let counter_event (c : counter_sample) =
    Json.Obj
      [
        ("name", Json.Str c.c_name);
        ("ph", Json.Str "C");
        ("pid", Json.Int 1);
        ("ts", Json.Float (rel c.c_ts_us));
        ("args", Json.Obj [ ("value", Json.Float c.c_value) ]);
      ]
  in
  (* cross-track parent links render as flow arrows dispatch → job *)
  let by_id = Hashtbl.create 64 in
  List.iter (fun (c : completed) -> Hashtbl.replace by_id c.id c) t.completed;
  let flow_events (c : completed) =
    match c.parent with
    | None -> []
    | Some p -> (
        match Hashtbl.find_opt by_id p with
        | Some pc when not (String.equal pc.track c.track) ->
            let arrow ph extra ts track =
              Json.Obj
                ([
                   ("name", Json.Str "dispatch");
                   ("cat", Json.Str "par");
                   ("ph", Json.Str ph);
                   ("id", Json.Int c.id);
                   ("pid", Json.Int 1);
                   ("tid", Json.Int (track_of t track).tid);
                   ("ts", Json.Float (rel ts));
                 ]
                @ extra)
            in
            [
              arrow "s" [] (pc.start_us +. (pc.dur_us /. 2.)) pc.track;
              arrow "f" [ ("bp", Json.Str "e") ] c.start_us c.track;
            ]
        | _ -> [])
  in
  let thread_name tr =
    Json.Obj
      [
        ("name", Json.Str "thread_name");
        ("ph", Json.Str "M");
        ("pid", Json.Int 1);
        ("tid", Json.Int tr.tid);
        ("args", Json.Obj [ ("name", Json.Str tr.label) ]);
      ]
  in
  let tracks =
    Hashtbl.fold (fun _ tr acc -> tr :: acc) t.tracks []
    |> List.sort (fun a b -> Int.compare a.tid b.tid)
  in
  let spans = completed_spans t in
  Json.to_string
    (Json.Obj
       [
         ("displayTimeUnit", Json.Str "ns");
         ( "traceEvents",
           Json.List
             (List.map thread_name tracks
             @ List.map span_event spans
             @ List.concat_map flow_events spans
             @ List.map instant_event (List.rev t.instants)
             @ List.map counter_event (List.rev t.counters)) );
       ])
