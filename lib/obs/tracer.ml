(* Nestable timed spans plus instant markers, exported in the Chrome
   trace_event JSON format so a whole flow run opens as a timeline in
   chrome://tracing or Perfetto.

   Spans carry the host clock (the [ts]/[dur] fields, microseconds) and,
   when begun from inside a simulation, the simulated clock (in the
   [args]).  Spans live on named tracks, one Chrome "thread" per track:
   the default track carries the sequential flow (levels, verifications,
   solver calls), while each bus master gets its own track so that the
   interleaved transactions of concurrent simulation processes still
   render as properly nested rectangles. *)

type track = { tid : int; label : string; mutable depth : int }

type span = {
  s_name : string;
  s_cat : string;
  s_track : track;
  s_depth : int;
  s_start_us : float;
  s_sim_start_ns : int option;
  s_args : (string * Json.t) list;
}

type completed = {
  name : string;
  cat : string;
  track : string;
  depth : int;
  start_us : float;
  dur_us : float;
  sim_start_ns : int option;
  sim_dur_ns : int option;
  args : (string * Json.t) list;
}

type instant = {
  i_name : string;
  i_severity : Severity.t;
  i_ts_us : float;
  i_track : track;
  i_sim_ns : int option;
  i_args : (string * Json.t) list;
}

type t = {
  epoch_us : float;
  tracks : (string, track) Hashtbl.t;
  mutable next_tid : int;
  mutable completed : completed list;  (* newest first *)
  mutable instants : instant list;
  mutable completed_count : int;
}

let default_track = "flow"

let now_us () = Unix.gettimeofday () *. 1e6

let create () =
  {
    epoch_us = now_us ();
    tracks = Hashtbl.create 8;
    next_tid = 1;
    completed = [];
    instants = [];
    completed_count = 0;
  }

let track_of t label =
  match Hashtbl.find_opt t.tracks label with
  | Some tr -> tr
  | None ->
      let tr = { tid = t.next_tid; label; depth = 0 } in
      t.next_tid <- t.next_tid + 1;
      Hashtbl.add t.tracks label tr;
      tr

let begin_span t ?(track = default_track) ?(cat = "app") ?(args = []) ?sim_ns
    name =
  let tr = track_of t track in
  let s =
    {
      s_name = name;
      s_cat = cat;
      s_track = tr;
      s_depth = tr.depth;
      s_start_us = now_us ();
      s_sim_start_ns = sim_ns;
      s_args = args;
    }
  in
  tr.depth <- tr.depth + 1;
  s

let end_span t ?(args = []) ?sim_ns s =
  let tr = s.s_track in
  if tr.depth > 0 then tr.depth <- tr.depth - 1;
  let sim_dur_ns =
    match (s.s_sim_start_ns, sim_ns) with
    | Some a, Some b -> Some (b - a)
    | _ -> None
  in
  t.completed <-
    {
      name = s.s_name;
      cat = s.s_cat;
      track = tr.label;
      depth = s.s_depth;
      start_us = s.s_start_us;
      dur_us = now_us () -. s.s_start_us;
      sim_start_ns = s.s_sim_start_ns;
      sim_dur_ns;
      args = s.s_args @ args;
    }
    :: t.completed;
  t.completed_count <- t.completed_count + 1

let with_span t ?track ?cat ?args ?sim_ns name f =
  let s = begin_span t ?track ?cat ?args ?sim_ns name in
  match f () with
  | v ->
      end_span t s;
      v
  | exception e ->
      end_span t s;
      raise e

let instant t ?(track = default_track) ?(severity = Severity.Info)
    ?(args = []) ?sim_ns name =
  t.instants <-
    {
      i_name = name;
      i_severity = severity;
      i_ts_us = now_us ();
      i_track = track_of t track;
      i_sim_ns = sim_ns;
      i_args = args;
    }
    :: t.instants

let span_count t = t.completed_count

let completed_spans t = List.rev t.completed

let spans_with_cat t cat =
  List.filter (fun c -> String.equal c.cat cat) (completed_spans t)

(* --- Chrome trace_event export --- *)

let sim_args sim_start_ns sim_dur_ns =
  (match sim_start_ns with
  | Some ns -> [ ("sim_ns", Json.Int ns) ]
  | None -> [])
  @
  match sim_dur_ns with
  | Some ns -> [ ("sim_dur_ns", Json.Int ns) ]
  | None -> []

let to_chrome_json t =
  let rel us = us -. t.epoch_us in
  let span_event (c : completed) =
    Json.Obj
      [
        ("name", Json.Str c.name);
        ("cat", Json.Str c.cat);
        ("ph", Json.Str "X");
        ("pid", Json.Int 1);
        ("tid", Json.Int (track_of t c.track).tid);
        ("ts", Json.Float (rel c.start_us));
        ("dur", Json.Float c.dur_us);
        ("args", Json.Obj (sim_args c.sim_start_ns c.sim_dur_ns @ c.args));
      ]
  in
  let instant_event (i : instant) =
    Json.Obj
      [
        ("name", Json.Str i.i_name);
        ("cat", Json.Str (Severity.to_string i.i_severity));
        ("ph", Json.Str "i");
        ("s", Json.Str "t");
        ("pid", Json.Int 1);
        ("tid", Json.Int i.i_track.tid);
        ("ts", Json.Float (rel i.i_ts_us));
        ("args", Json.Obj (sim_args i.i_sim_ns None @ i.i_args));
      ]
  in
  let thread_name tr =
    Json.Obj
      [
        ("name", Json.Str "thread_name");
        ("ph", Json.Str "M");
        ("pid", Json.Int 1);
        ("tid", Json.Int tr.tid);
        ("args", Json.Obj [ ("name", Json.Str tr.label) ]);
      ]
  in
  let tracks =
    Hashtbl.fold (fun _ tr acc -> tr :: acc) t.tracks []
    |> List.sort (fun a b -> Int.compare a.tid b.tid)
  in
  Json.to_string
    (Json.Obj
       [
         ("displayTimeUnit", Json.Str "ns");
         ( "traceEvents",
           Json.List
             (List.map thread_name tracks
             @ List.map span_event (completed_spans t)
             @ List.map instant_event (List.rev t.instants)) );
       ])
