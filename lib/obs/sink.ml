(* Pluggable event sinks.  A sink is just a pair of closures, so callers
   can build their own (a socket, a ring buffer, ...) without this
   library knowing. *)

type t = { emit : Event.t -> unit; flush : unit -> unit }

let null = { emit = ignore; flush = ignore }

let buffer () =
  let events = ref [] in
  ( { emit = (fun e -> events := e :: !events); flush = ignore },
    fun () -> List.rev !events )

let formatter ?(min_severity = Severity.Debug) fmt =
  {
    emit =
      (fun e ->
        if Severity.compare e.Event.severity min_severity >= 0 then
          Fmt.pf fmt "%a@." Event.pp e);
    flush = (fun () -> Format.pp_print_flush fmt ());
  }

let stderr ?min_severity () = formatter ?min_severity Fmt.stderr
