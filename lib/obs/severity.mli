(** Event severities, ordered [Debug < Info < Warn < Error]. *)

type t = Debug | Info | Warn | Error

val to_int : t -> int
val to_string : t -> string
val of_string : string -> t option
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
