(** Event severities, ordered [Debug < Info < Warn < Error]. *)

type t = Debug | Info | Warn | Error

val to_int : t -> int
(** The ordering rank, [0] for [Debug] through [3] for [Error]. *)

val to_string : t -> string
(** Lowercase name, e.g. ["warn"]. *)

val of_string : string -> t option
(** Inverse of {!to_string} (case-insensitive); [None] on anything else. *)

val compare : t -> t -> int
(** Severity order: [Debug < Info < Warn < Error]. *)

val pp : Format.formatter -> t -> unit
(** Prints {!to_string}. *)
