(** Minimal JSON tree with an emitter and a parser.

    The emitter produces strict JSON (non-finite floats become [null]);
    the parser accepts what the emitter produces plus ordinary JSON, and
    exists so tests can validate exported artefacts by parsing them
    back. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Strict single-line JSON (non-finite floats emit as [null]). *)

val pp : Format.formatter -> t -> unit
(** Same output as {!to_string}, on a formatter. *)

exception Parse_error of string

val parse_exn : string -> t
(** @raise Parse_error on malformed input. *)

val parse : string -> (t, string) result

val member : string -> t -> t option
(** Field of an object; [None] on missing field or non-object. *)

val to_list : t -> t list option
(** The elements of a [List]; [None] for any other node. *)

val to_number : t -> float option
(** The value of an [Int] or [Float]; [None] otherwise. *)

val to_str : t -> string option
(** The value of a [Str]; [None] otherwise. *)
