(* Structured events: a severity, a name, a key/value payload, the host
   timestamp and (when emitted from inside a simulation) the simulated
   time.  Events flow to sinks; warnings and errors also become instants
   on the trace timeline. *)

type t = {
  severity : Severity.t;
  name : string;
  args : (string * Json.t) list;
  host_us : float;
  sim_ns : int option;
}

let make ?(severity = Severity.Info) ?(args = []) ?sim_ns ~host_us name =
  { severity; name; args; host_us; sim_ns }

let to_json e =
  let base =
    [
      ("severity", Json.Str (Severity.to_string e.severity));
      ("name", Json.Str e.name);
      ("host_us", Json.Float e.host_us);
    ]
  in
  let sim =
    match e.sim_ns with None -> [] | Some ns -> [ ("sim_ns", Json.Int ns) ]
  in
  let args =
    match e.args with [] -> [] | args -> [ ("args", Json.Obj args) ]
  in
  Json.Obj (base @ sim @ args)

let pp fmt e =
  Fmt.pf fmt "[%a] %s" Severity.pp e.severity e.name;
  (match e.sim_ns with
  | Some ns -> Fmt.pf fmt " @@%dns" ns
  | None -> ());
  List.iter (fun (k, v) -> Fmt.pf fmt " %s=%a" k Json.pp v) e.args
