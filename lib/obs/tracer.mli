(** Nestable timed spans and instant markers, exported as Chrome
    trace_event JSON (loadable in chrome://tracing or Perfetto).

    Spans carry host time always, and simulated time when the caller
    passes [sim_ns].  Spans are grouped on named {e tracks} (Chrome
    threads): the default track serialises the flow itself, while
    concurrent simulation processes (e.g. bus masters) should each use
    their own track so their interleaved spans still nest.

    Every span has a timeline-unique id and an optional causal parent
    (defaulting to the innermost open span on the same track); parents
    that live on a {e different} track are exported as Chrome flow
    arrows, which is how a [Par] dispatch span points at the job spans
    that ran on worker lanes. *)

type t

type span

type completed = {
  id : int;  (** timeline-unique span id (also exported in the args) *)
  parent : int option;  (** causal parent span id, if any *)
  name : string;
  cat : string;
  track : string;
  depth : int;  (** nesting depth within the track at begin time *)
  start_us : float;
  dur_us : float;
  sim_start_ns : int option;
  sim_dur_ns : int option;
  args : (string * Json.t) list;
}

val default_track : string
(** ["flow"]. *)

val create : unit -> t
(** An empty timeline. *)

val begin_span :
  t ->
  ?track:string ->
  ?cat:string ->
  ?args:(string * Json.t) list ->
  ?sim_ns:int ->
  ?parent:int ->
  string ->
  span
(** Open a span on [track] (default {!default_track}) at the current
    host time; [cat] is the Chrome category, [sim_ns] the simulated
    start time.  [parent] overrides the causal parent (default: the
    innermost span still open on the same track). *)

val span_id : span -> int
(** The timeline-unique id of an open span (usable as [?parent]). *)

val end_span : t -> ?args:(string * Json.t) list -> ?sim_ns:int -> span -> unit
(** Close the span; [sim_ns] here yields a simulated duration in the
    exported args.  Spans on the same track must close in LIFO order. *)

val with_span :
  t ->
  ?track:string ->
  ?cat:string ->
  ?args:(string * Json.t) list ->
  ?sim_ns:int ->
  string ->
  (unit -> 'a) ->
  'a
(** Scoped span; closes on normal return and on exception. *)

val instant :
  t ->
  ?track:string ->
  ?severity:Severity.t ->
  ?args:(string * Json.t) list ->
  ?sim_ns:int ->
  ?ts_us:float ->
  string ->
  unit
(** A zero-duration marker on the timeline.  [ts_us] overrides the
    timestamp (absolute host microseconds) — the merge path uses it to
    replay events recorded on worker domains at their original time. *)

val counter_sample : t -> ?ts_us:float -> string -> float -> unit
(** One sample of a named Chrome counter track (ph ["C"]) — the budget
    waterfall exports the governor's cumulative spend this way. *)

val reserve_ids : t -> int -> int
(** [reserve_ids t n] reserves [n] consecutive span ids and returns the
    first; the merge path allocates ids for a whole buffer up front so
    parent links survive arbitrary completion order. *)

val add_completed : t -> completed -> unit
(** Append an externally-built completed span (merge path); its [id]
    must come from {!reserve_ids} and its [track] is registered on
    first use. *)

val span_count : t -> int
(** Number of completed spans. *)

val completed_spans : t -> completed list
(** Completed spans, oldest first. *)

val spans_with_cat : t -> string -> completed list
(** Completed spans whose category equals the argument, oldest first. *)

val to_chrome_json : t -> string
(** The whole timeline as a Chrome trace_event JSON document. *)
