(** Nestable timed spans and instant markers, exported as Chrome
    trace_event JSON (loadable in chrome://tracing or Perfetto).

    Spans carry host time always, and simulated time when the caller
    passes [sim_ns].  Spans are grouped on named {e tracks} (Chrome
    threads): the default track serialises the flow itself, while
    concurrent simulation processes (e.g. bus masters) should each use
    their own track so their interleaved spans still nest. *)

type t

type span

type completed = {
  name : string;
  cat : string;
  track : string;
  depth : int;  (** nesting depth within the track at begin time *)
  start_us : float;
  dur_us : float;
  sim_start_ns : int option;
  sim_dur_ns : int option;
  args : (string * Json.t) list;
}

val default_track : string
(** ["flow"]. *)

val create : unit -> t
(** An empty timeline. *)

val begin_span :
  t ->
  ?track:string ->
  ?cat:string ->
  ?args:(string * Json.t) list ->
  ?sim_ns:int ->
  string ->
  span
(** Open a span on [track] (default {!default_track}) at the current
    host time; [cat] is the Chrome category, [sim_ns] the simulated
    start time. *)

val end_span : t -> ?args:(string * Json.t) list -> ?sim_ns:int -> span -> unit
(** Close the span; [sim_ns] here yields a simulated duration in the
    exported args.  Spans on the same track must close in LIFO order. *)

val with_span :
  t ->
  ?track:string ->
  ?cat:string ->
  ?args:(string * Json.t) list ->
  ?sim_ns:int ->
  string ->
  (unit -> 'a) ->
  'a
(** Scoped span; closes on normal return and on exception. *)

val instant :
  t ->
  ?track:string ->
  ?severity:Severity.t ->
  ?args:(string * Json.t) list ->
  ?sim_ns:int ->
  string ->
  unit
(** A zero-duration marker on the timeline. *)

val span_count : t -> int
(** Number of completed spans. *)

val completed_spans : t -> completed list
(** Completed spans, oldest first. *)

val spans_with_cat : t -> string -> completed list
(** Completed spans whose category equals the argument, oldest first. *)

val to_chrome_json : t -> string
(** The whole timeline as a Chrome trace_event JSON document. *)
