(* A per-domain telemetry buffer: the worker-side half of the
   cross-domain merge.

   The global tracer and metrics registry are single-domain state, so a
   Par worker cannot write to them directly.  Instead the dispatching
   domain installs one [Buffer.t] per job (via [Obs.with_buffer]); every
   instrumentation call made while the buffer is installed appends a
   small replayable op — a completed span, a counter delta, a gauge
   sample, a histogram observation, or a structured event — and after
   the fan-in the dispatcher merges the buffers back in job order
   ([Obs.merge_buffer]).  Ops carry buffer-local span ids; the merge
   remaps them onto the target (tracer ids, or the outer buffer's ids
   when Par maps nest), so parent links survive.

   Spans recorded here form a single dynamic stack per buffer: a span
   begun while another is open is its causal child even across tracks,
   which matches the one-job-one-fiber execution model.  Top-level spans
   (no parent inside the buffer) are parented to the dispatch span at
   merge time and placed on a per-lane track. *)

type parent = Local of int | Global of int

type span_op = {
  b_id : int;
  b_parent : parent option;
  b_name : string;
  b_cat : string;
  b_track : string;  (* original track label, before lane prefixing *)
  b_depth : int;
  b_start_us : float;
  b_dur_us : float;
  b_sim_start_ns : int option;
  b_sim_dur_ns : int option;
  b_args : (string * Json.t) list;
}

type op =
  | Span of span_op
  | Counter of { name : string; by : int }
  | Gauge of { name : string; x : float option; value : float }
  | Observe of { name : string; value : int }
  | Ev of Event.t

type open_span = {
  o_id : int;
  o_parent : parent option;
  o_name : string;
  o_cat : string;
  o_track : string;
  o_depth : int;
  o_start_us : float;
  o_sim_start_ns : int option;
  o_args : (string * Json.t) list;
}

type t = {
  mutable ops : op list;  (* newest first *)
  mutable next_id : int;
  mutable open_stack : int list;  (* dynamic stack of open span ids *)
  track_depths : (string, int) Hashtbl.t;
}

let create () =
  { ops = []; next_id = 0; open_stack = []; track_depths = Hashtbl.create 4 }

let now_us () = Unix.gettimeofday () *. 1e6

let default_track = Tracer.default_track

let begin_span b ?(track = default_track) ?(cat = "app") ?(args = []) ?sim_ns
    name =
  let depth =
    match Hashtbl.find_opt b.track_depths track with Some d -> d | None -> 0
  in
  Hashtbl.replace b.track_depths track (depth + 1);
  let id = b.next_id in
  b.next_id <- id + 1;
  let parent =
    match b.open_stack with [] -> None | p :: _ -> Some (Local p)
  in
  b.open_stack <- id :: b.open_stack;
  {
    o_id = id;
    o_parent = parent;
    o_name = name;
    o_cat = cat;
    o_track = track;
    o_depth = depth;
    o_start_us = now_us ();
    o_sim_start_ns = sim_ns;
    o_args = args;
  }

let end_span b ?(args = []) ?sim_ns o =
  (match Hashtbl.find_opt b.track_depths o.o_track with
  | Some d when d > 0 -> Hashtbl.replace b.track_depths o.o_track (d - 1)
  | _ -> ());
  b.open_stack <- List.filter (fun id -> id <> o.o_id) b.open_stack;
  let sim_dur_ns =
    match (o.o_sim_start_ns, sim_ns) with
    | Some a, Some b -> Some (b - a)
    | _ -> None
  in
  b.ops <-
    Span
      {
        b_id = o.o_id;
        b_parent = o.o_parent;
        b_name = o.o_name;
        b_cat = o.o_cat;
        b_track = o.o_track;
        b_depth = o.o_depth;
        b_start_us = o.o_start_us;
        b_dur_us = now_us () -. o.o_start_us;
        b_sim_start_ns = o.o_sim_start_ns;
        b_sim_dur_ns = sim_dur_ns;
        b_args = o.o_args @ args;
      }
    :: b.ops

let open_span_id o = o.o_id

let counter b ?(by = 1) name = b.ops <- Counter { name; by } :: b.ops
let gauge b ?x name value = b.ops <- Gauge { name; x; value } :: b.ops
let observe b name value = b.ops <- Observe { name; value } :: b.ops
let event b e = b.ops <- Ev e :: b.ops

let ops b = List.rev b.ops
let span_ids b = b.next_id
let op_count b = List.length b.ops

(* The lane prefix applied at merge time: a buffered top-level span goes
   on the bare lane track, everything below it keeps its original track
   under the lane.  Nested Par maps prefix again, yielding hierarchical
   lane paths ("lane1/lane0/m2"). *)
let lane_track ~lane orig_track ~top_level =
  if top_level then Printf.sprintf "lane%d" lane
  else Printf.sprintf "lane%d/%s" lane orig_track

(* Absorb [inner] into [outer] (a nested Par map whose dispatcher was
   itself running buffered).  Local ids are offset into the outer id
   space; top-level inner spans are parented to [parent] (an open span
   of the outer buffer) and moved onto their lane track. *)
let absorb outer ~lane ?parent inner =
  let offset = outer.next_id in
  outer.next_id <- outer.next_id + inner.next_id;
  let remap = function
    | Some (Local i) -> Some (Local (i + offset))
    | (Some (Global _) | None) as p -> p
  in
  List.iter
    (fun op ->
      let op' =
        match op with
        | Span s ->
            let top = s.b_parent = None in
            Span
              {
                s with
                b_id = s.b_id + offset;
                b_parent =
                  (if top then
                     match parent with
                     | Some p -> Some (Local p)
                     | None -> None
                   else remap s.b_parent);
                b_track = lane_track ~lane s.b_track ~top_level:top;
              }
        | (Counter _ | Gauge _ | Observe _ | Ev _) as o -> o
      in
      outer.ops <- op' :: outer.ops)
    (ops inner)
