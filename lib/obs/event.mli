(** Severity-tagged structured events with key/value payloads. *)

type t = {
  severity : Severity.t;
  name : string;
  args : (string * Json.t) list;
  host_us : float;  (** host wall-clock, microseconds since the epoch *)
  sim_ns : int option;  (** simulated time, when emitted from a simulation *)
}

val make :
  ?severity:Severity.t ->
  ?args:(string * Json.t) list ->
  ?sim_ns:int ->
  host_us:float ->
  string ->
  t
(** [make ~host_us name] is an event stamped with the given host time;
    [severity] defaults to [Info], [args] to the empty payload. *)

val to_json : t -> Json.t
(** The event as a JSON object (what the JSONL sinks emit). *)

val pp : Format.formatter -> t -> unit
(** One human-readable line: severity, name, payload. *)
