(** Pluggable destinations for structured events. *)

type t = { emit : Event.t -> unit; flush : unit -> unit }

val null : t
(** Discards everything. *)

val buffer : unit -> t * (unit -> Event.t list)
(** In-memory sink; the second component returns the events received so
    far, oldest first. *)

val formatter : ?min_severity:Severity.t -> Format.formatter -> t
(** Human-readable rendering of each event at or above [min_severity]
    (default: everything). *)

val stderr : ?min_severity:Severity.t -> unit -> t
(** {!formatter} on [Format.err_formatter]. *)
