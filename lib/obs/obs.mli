(** Process-wide telemetry: one tracer, one metrics registry, one sink
    list, behind a single enable flag.

    Everything is a no-op while disabled; instrumentation sites on hot
    paths should still guard with [if Obs.enabled () then ...] so that
    argument lists are not even allocated. *)

val enabled : unit -> bool
(** True only on the owning domain (see [set_enabled]): worker domains
    of a [Symbad_par] pool always read false, so instrumentation inside
    parallel jobs is a safe no-op. *)

val set_enabled : bool -> unit
(** [set_enabled true] also makes the calling domain the owner of the
    switchboard — the tracer and registry are single-domain state. *)

val tracer : unit -> Tracer.t
(** The process-wide span timeline. *)

val metrics : unit -> Metrics.t
(** The process-wide metrics registry. *)

val add_sink : Sink.t -> unit
(** Register an event sink; every subsequent {!event} reaches it. *)

val sink_list : unit -> Sink.t list
(** The registered sinks, in registration order. *)

val reset : unit -> unit
(** Fresh tracer, fresh registry, no sinks.  Does not change the
    enabled flag. *)

(** {1 Events} *)

val event :
  ?severity:Severity.t ->
  ?args:(string * Json.t) list ->
  ?sim_ns:int ->
  string ->
  unit
(** Emit a structured event to every sink; [Info] and graver also become
    instants on the trace timeline. *)

(** {1 Spans} *)

type span

val null_span : span
(** What a site that guards [begin_span] behind [enabled] uses as the
    disabled arm; [end_span] on it is a no-op. *)

val begin_span :
  ?track:string ->
  ?cat:string ->
  ?args:(string * Json.t) list ->
  ?sim_ns:int ->
  string ->
  span
(** Open a span on the timeline ({!null_span} while disabled). *)

val end_span : ?args:(string * Json.t) list -> ?sim_ns:int -> span -> unit
(** Close a span opened by {!begin_span}; extra [args] are merged in. *)

val span :
  ?track:string ->
  ?cat:string ->
  ?args:(string * Json.t) list ->
  ?sim_ns:int ->
  string ->
  (unit -> 'a) ->
  'a
(** Scoped span around a computation; transparent while disabled. *)

(** {1 Metric shorthands} *)

val incr_counter : ?by:int -> string -> unit
(** [Metrics.incr] on the named counter of the global registry. *)

val set_gauge : ?x:float -> string -> float -> unit
(** [Metrics.set] on the named gauge of the global registry. *)

val observe : string -> int -> unit
(** [Metrics.observe] on the named histogram of the global registry. *)
