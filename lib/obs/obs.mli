(** Process-wide telemetry: one tracer, one metrics registry, one sink
    list, behind a single enable flag.

    Everything is a no-op while disabled; instrumentation sites on hot
    paths should still guard with [if Obs.enabled () then ...] so that
    argument lists are not even allocated.

    Direct writes to the tracer/registry belong to the {e owner} domain
    (the one that last called [set_enabled true]).  Other domains record
    into a per-domain {!Telemetry_buffer.t} installed by their dispatcher
    ({!with_buffer} — [Par] installs one per job) and the dispatcher
    replays the buffers at the fan-in ({!merge_buffer}) in job order, so
    merged metrics are byte-identical at any pool width.  Emissions from
    a domain with neither role are dropped and counted
    ({!dropped_count}). *)

val enabled : unit -> bool
(** True on the owner domain and on any domain running under an
    installed buffer; false (and emissions are dropped-and-counted)
    elsewhere. *)

val set_enabled : bool -> unit
(** [set_enabled true] also makes the calling domain the owner of the
    switchboard — the tracer and registry are single-domain state. *)

val tracer : unit -> Tracer.t
(** The process-wide span timeline (owner domain only). *)

val metrics : unit -> Metrics.t
(** The process-wide metrics registry (owner domain only). *)

val add_sink : Sink.t -> unit
(** Register an event sink; every subsequent {!event} reaches it. *)

val sink_list : unit -> Sink.t list
(** The registered sinks, in registration order. *)

val reset : unit -> unit
(** Fresh tracer, fresh registry, no sinks, dropped count zeroed.  Does
    not change the enabled flag. *)

(** {1 Cross-domain buffering} *)

val set_buffering : bool -> unit
(** [set_buffering false] disables per-job buffering in [Par] (worker
    emissions are dropped and counted, as before the merge existed) —
    regression-test escape hatch.  Default: enabled. *)

val buffering : unit -> bool
(** Whether per-job buffering is on. *)

val dropped_count : unit -> int
(** Emissions dropped since the last {!reset} because they came from a
    domain that is neither the owner nor under a buffer.  Nonzero means
    counters/spans under-report parallel work — the CLI warns on it. *)

(** {1 Events} *)

val event :
  ?severity:Severity.t ->
  ?args:(string * Json.t) list ->
  ?sim_ns:int ->
  string ->
  unit
(** Emit a structured event to every sink; [Info] and graver also become
    instants on the trace timeline. *)

(** {1 Spans} *)

type span

val null_span : span
(** What a site that guards [begin_span] behind [enabled] uses as the
    disabled arm; [end_span] on it is a no-op. *)

val begin_span :
  ?track:string ->
  ?cat:string ->
  ?args:(string * Json.t) list ->
  ?sim_ns:int ->
  string ->
  span
(** Open a span on the timeline ({!null_span} while disabled). *)

val end_span : ?args:(string * Json.t) list -> ?sim_ns:int -> span -> unit
(** Close a span opened by {!begin_span}; extra [args] are merged in. *)

val span :
  ?track:string ->
  ?cat:string ->
  ?args:(string * Json.t) list ->
  ?sim_ns:int ->
  string ->
  (unit -> 'a) ->
  'a
(** Scoped span around a computation; transparent while disabled. *)

val with_buffer : Telemetry_buffer.t -> (unit -> 'a) -> 'a
(** Run a thunk with every telemetry emission of the calling domain
    recorded into the buffer (restores the previous buffer, if any, on
    exit).  [Par] wraps each job in this. *)

val merge_buffer : ?parent:span -> lane:int -> Telemetry_buffer.t -> unit
(** Replay a buffer into the caller's telemetry target: the global
    tracer/registry on the owner domain, or the caller's own buffer
    when Par maps nest.  Top-level buffered spans are parented to
    [parent] (the dispatch span) and placed on track ["lane<lane>"];
    nested spans keep their original track under a ["lane<lane>/"]
    prefix.  Counter deltas, gauge samples, histogram observations and
    events replay in recorded order — merging buffers in job-dispatch
    order makes the merged registry deterministic. *)

(** {1 Metric shorthands} *)

val incr_counter : ?by:int -> string -> unit
(** [Metrics.incr] on the named counter of the global registry (or the
    installed buffer). *)

val set_gauge : ?x:float -> string -> float -> unit
(** [Metrics.set] on the named gauge of the global registry (or the
    installed buffer). *)

val observe : string -> int -> unit
(** [Metrics.observe] on the named histogram of the global registry (or
    the installed buffer). *)
