(* The process-wide telemetry switchboard.

   Instrumentation all over the stack (kernel, bus, solver, FPGA, flow)
   talks to one global tracer, one global metrics registry and one list
   of event sinks, all behind a single [enabled] flag.  When telemetry
   is off every instrumentation site reduces to one branch on
   [Obs.enabled ()] — no allocation, no registry traffic — which keeps
   the simulation hot paths at their uninstrumented speed. *)

let enabled_flag = ref false

(* The tracer, registry and sinks are not safe for concurrent mutation,
   so the switchboard belongs to one domain: the one that last called
   [set_enabled true].  On every other domain (e.g. Par pool workers)
   [enabled] reads false and all instrumentation is a no-op — parallel
   jobs cannot corrupt the timeline, and pool-level telemetry is
   recorded by the owning domain at the fan-in instead. *)
let owner = ref (Domain.self ())
let enabled () = !enabled_flag && Domain.self () = !owner

let set_enabled b =
  if b then owner := Domain.self ();
  enabled_flag := b

let tracer_ref = ref (Tracer.create ())
let metrics_ref = ref (Metrics.create ())
let sinks : Sink.t list ref = ref []

let tracer () = !tracer_ref
let metrics () = !metrics_ref
let add_sink s = sinks := s :: !sinks
let sink_list () = !sinks

let reset () =
  tracer_ref := Tracer.create ();
  metrics_ref := Metrics.create ();
  sinks := []

let now_us () = Unix.gettimeofday () *. 1e6

(* --- events --- *)

let event ?(severity = Severity.Info) ?(args = []) ?sim_ns name =
  if enabled () then begin
    let e = Event.make ~severity ~args ?sim_ns ~host_us:(now_us ()) name in
    List.iter (fun (s : Sink.t) -> s.Sink.emit e) !sinks;
    (* warnings and errors also land on the timeline *)
    if Severity.compare severity Severity.Info >= 0 then
      Tracer.instant !tracer_ref ~severity ~args ?sim_ns name
  end

(* --- spans --- *)

type span = Tracer.span option

let null_span : span = None

let begin_span ?track ?cat ?args ?sim_ns name =
  if enabled () then
    Some (Tracer.begin_span !tracer_ref ?track ?cat ?args ?sim_ns name)
  else None

let end_span ?args ?sim_ns (s : span) =
  match s with
  | None -> ()
  | Some s -> Tracer.end_span !tracer_ref ?args ?sim_ns s

let span ?track ?cat ?args ?sim_ns name f =
  if not (enabled ()) then f ()
  else Tracer.with_span !tracer_ref ?track ?cat ?args ?sim_ns name f

(* --- metric conveniences (registry lookup per call; fine off the hot
   path, hot paths should flush deltas at quiescent points) --- *)

let incr_counter ?(by = 1) name =
  if enabled () then Metrics.incr ~by (Metrics.counter !metrics_ref name)

let set_gauge ?x name v =
  if enabled () then Metrics.set ?x (Metrics.gauge !metrics_ref name) v

let observe name v =
  if enabled () then
    Metrics.observe (Metrics.histogram !metrics_ref name) v
