(* The process-wide telemetry switchboard.

   Instrumentation all over the stack (kernel, bus, solver, FPGA, flow)
   talks to one global tracer, one global metrics registry and one list
   of event sinks, all behind a single [enabled] flag.  When telemetry
   is off every instrumentation site reduces to one branch on
   [Obs.enabled ()] — no allocation, no registry traffic — which keeps
   the simulation hot paths at their uninstrumented speed.

   The tracer, registry and sinks are not safe for concurrent mutation,
   so direct writes belong to one domain: the one that last called
   [set_enabled true].  Every other domain records into a per-domain
   [Telemetry_buffer.t] installed by the dispatcher ([with_buffer] — Par installs
   one per job), and the dispatcher replays the buffers into the global
   state at the fan-in ([merge_buffer]) in job order, so merged metrics
   are identical at any pool width.  A domain that is neither the owner
   nor running under a buffer drops the emission and counts it
   ([dropped_count]) so the CLI can warn instead of silently
   under-reporting. *)

let enabled_flag = Atomic.make false
let owner = ref (Domain.self ())

(* the per-domain buffer installed by [with_buffer] *)
let buffer_key : Telemetry_buffer.t option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

(* [set_buffering false] restores the pre-merge behaviour (worker
   emissions dropped) — kept for the regression test and as an escape
   hatch if buffering memory ever matters more than completeness. *)
let buffering_flag = Atomic.make true
let set_buffering b = Atomic.set buffering_flag b
let buffering () = Atomic.get buffering_flag

let dropped = Atomic.make 0
let dropped_count () = Atomic.get dropped

let note_drop () =
  if Atomic.get enabled_flag then ignore (Atomic.fetch_and_add dropped 1)

type mode = Off | Direct | Buffered of Telemetry_buffer.t

let mode () =
  if not (Atomic.get enabled_flag) then Off
  else
    match Domain.DLS.get buffer_key with
    | Some b -> Buffered b
    | None -> if Domain.self () = !owner then Direct else Off

let enabled () = mode () <> Off

let set_enabled b =
  if b then owner := Domain.self ();
  Atomic.set enabled_flag b

let tracer_ref = ref (Tracer.create ())
let metrics_ref = ref (Metrics.create ())
let sinks : Sink.t list ref = ref []

let tracer () = !tracer_ref
let metrics () = !metrics_ref
let add_sink s = sinks := s :: !sinks
let sink_list () = !sinks

let reset () =
  tracer_ref := Tracer.create ();
  metrics_ref := Metrics.create ();
  sinks := [];
  Atomic.set dropped 0

let now_us () = Unix.gettimeofday () *. 1e6

let with_buffer b f =
  let old = Domain.DLS.get buffer_key in
  Domain.DLS.set buffer_key (Some b);
  Fun.protect ~finally:(fun () -> Domain.DLS.set buffer_key old) f

(* --- events --- *)

let event ?(severity = Severity.Info) ?(args = []) ?sim_ns name =
  match mode () with
  | Off -> note_drop ()
  | Direct ->
      let e = Event.make ~severity ~args ?sim_ns ~host_us:(now_us ()) name in
      List.iter (fun (s : Sink.t) -> s.Sink.emit e) !sinks;
      (* warnings and errors also land on the timeline *)
      if Severity.compare severity Severity.Info >= 0 then
        Tracer.instant !tracer_ref ~severity ~args ?sim_ns name
  | Buffered b ->
      (* Debug events only reach sinks, so don't buffer them unless a
         sink is listening — a simulated job parks/resumes constantly *)
      if Severity.compare severity Severity.Info >= 0 || !sinks <> [] then
        Telemetry_buffer.event b
          (Event.make ~severity ~args ?sim_ns ~host_us:(now_us ()) name)

(* --- spans --- *)

type span =
  | S_none
  | S_direct of Tracer.span
  | S_buffered of Telemetry_buffer.t * Telemetry_buffer.open_span

let null_span : span = S_none

let begin_span ?track ?cat ?args ?sim_ns name =
  match mode () with
  | Off ->
      note_drop ();
      S_none
  | Direct ->
      S_direct (Tracer.begin_span !tracer_ref ?track ?cat ?args ?sim_ns name)
  | Buffered b ->
      S_buffered (b, Telemetry_buffer.begin_span b ?track ?cat ?args ?sim_ns name)

let end_span ?args ?sim_ns (s : span) =
  match s with
  | S_none -> ()
  | S_direct s -> Tracer.end_span !tracer_ref ?args ?sim_ns s
  | S_buffered (b, o) -> Telemetry_buffer.end_span b ?args ?sim_ns o

let span ?track ?cat ?args ?sim_ns name f =
  match mode () with
  | Off ->
      note_drop ();
      f ()
  | Direct | Buffered _ -> (
      let s = begin_span ?track ?cat ?args ?sim_ns name in
      match f () with
      | v ->
          end_span s;
          v
      | exception e ->
          end_span s;
          raise e)

(* --- metric conveniences (registry lookup per call; fine off the hot
   path, hot paths should flush deltas at quiescent points) --- *)

let incr_counter ?(by = 1) name =
  match mode () with
  | Off -> note_drop ()
  | Direct -> Metrics.incr ~by (Metrics.counter !metrics_ref name)
  | Buffered b -> Telemetry_buffer.counter b ~by name

let set_gauge ?x name v =
  match mode () with
  | Off -> note_drop ()
  | Direct -> Metrics.set ?x (Metrics.gauge !metrics_ref name) v
  | Buffered b -> Telemetry_buffer.gauge b ?x name v

let observe name v =
  match mode () with
  | Off -> note_drop ()
  | Direct -> Metrics.observe (Metrics.histogram !metrics_ref name) v
  | Buffered b -> Telemetry_buffer.observe b name v

(* --- the merge --- *)

let merge_buffer ?parent ~lane buf =
  match mode () with
  | Off -> () (* telemetry was turned off mid-flight; nothing to merge into *)
  | Buffered outer ->
      (* nested Par map: fold the job buffer into the dispatcher's own
         buffer; parents resolve when the outer buffer itself merges *)
      let parent_local =
        match parent with
        | Some (S_buffered (b, o)) when b == outer ->
            Some (Telemetry_buffer.open_span_id o)
        | _ -> None
      in
      Telemetry_buffer.absorb outer ~lane ?parent:parent_local buf
  | Direct ->
      let t = !tracer_ref in
      let m = !metrics_ref in
      let base = Tracer.reserve_ids t (Telemetry_buffer.span_ids buf) in
      let parent_global =
        match parent with
        | Some (S_direct s) -> Some (Tracer.span_id s)
        | _ -> None
      in
      List.iter
        (fun (op : Telemetry_buffer.op) ->
          match op with
          | Telemetry_buffer.Span s ->
              let top = s.Telemetry_buffer.b_parent = None in
              let parent =
                match s.Telemetry_buffer.b_parent with
                | None -> parent_global
                | Some (Telemetry_buffer.Local i) -> Some (base + i)
                | Some (Telemetry_buffer.Global g) -> Some g
              in
              Tracer.add_completed t
                {
                  Tracer.id = base + s.Telemetry_buffer.b_id;
                  parent;
                  name = s.Telemetry_buffer.b_name;
                  cat = s.Telemetry_buffer.b_cat;
                  track =
                    Telemetry_buffer.lane_track ~lane s.Telemetry_buffer.b_track ~top_level:top;
                  depth = s.Telemetry_buffer.b_depth;
                  start_us = s.Telemetry_buffer.b_start_us;
                  dur_us = s.Telemetry_buffer.b_dur_us;
                  sim_start_ns = s.Telemetry_buffer.b_sim_start_ns;
                  sim_dur_ns = s.Telemetry_buffer.b_sim_dur_ns;
                  args = s.Telemetry_buffer.b_args;
                }
          | Telemetry_buffer.Counter { name; by } ->
              Metrics.incr ~by (Metrics.counter m name)
          | Telemetry_buffer.Gauge { name; x; value } ->
              Metrics.set ?x (Metrics.gauge m name) value
          | Telemetry_buffer.Observe { name; value } ->
              Metrics.observe (Metrics.histogram m name) value
          | Telemetry_buffer.Ev e ->
              List.iter (fun (s : Sink.t) -> s.Sink.emit e) !sinks;
              if Severity.compare e.Event.severity Severity.Info >= 0 then
                Tracer.instant t
                  ~track:(Telemetry_buffer.lane_track ~lane "flow" ~top_level:true)
                  ~severity:e.Event.severity ~args:e.Event.args
                  ?sim_ns:e.Event.sim_ns ~ts_us:e.Event.host_us e.Event.name)
        (Telemetry_buffer.ops buf)
