(* Log-scale histogram over non-negative integers.

   Bucket 0 holds the value 0 (and any clamped negatives); bucket i >= 1
   holds the half-open power-of-two range [2^(i-1), 2^i).  63 value
   buckets cover the whole non-negative native-int range, max_int
   included, so durations in nanoseconds never overflow the axis. *)

let buckets = 64

type t = {
  counts : int array;
  mutable count : int;
  mutable sum : float;  (* float: max_int observations must not wrap *)
  mutable min_value : int;
  mutable max_value : int;
}

let create () =
  {
    counts = Array.make buckets 0;
    count = 0;
    sum = 0.;
    min_value = 0;
    max_value = 0;
  }

let bucket_index v =
  if v <= 0 then 0
  else
    (* index = floor(log2 v) + 1, by position of the highest set bit *)
    let rec go n acc = if n = 0 then acc else go (n lsr 1) (acc + 1) in
    go v 0

let bucket_bounds i =
  if i < 0 || i >= buckets then invalid_arg "Histogram.bucket_bounds"
  else if i = 0 then (0, 0)
  else
    let lo = 1 lsl (i - 1) in
    let hi = if i >= 63 then max_int else (1 lsl i) - 1 in
    (lo, hi)

let observe h v =
  let v = if v < 0 then 0 else v in
  h.counts.(bucket_index v) <- h.counts.(bucket_index v) + 1;
  if h.count = 0 then begin
    h.min_value <- v;
    h.max_value <- v
  end
  else begin
    if v < h.min_value then h.min_value <- v;
    if v > h.max_value then h.max_value <- v
  end;
  h.count <- h.count + 1;
  h.sum <- h.sum +. float_of_int v

let count h = h.count
let sum h = h.sum
let min_value h = h.min_value
let max_value h = h.max_value
let mean h = if h.count = 0 then 0. else h.sum /. float_of_int h.count

let nonempty_buckets h =
  let acc = ref [] in
  for i = buckets - 1 downto 0 do
    if h.counts.(i) > 0 then
      let lo, hi = bucket_bounds i in
      acc := (lo, hi, h.counts.(i)) :: !acc
  done;
  !acc

let reset h =
  Array.fill h.counts 0 buckets 0;
  h.count <- 0;
  h.sum <- 0.;
  h.min_value <- 0;
  h.max_value <- 0

let pp fmt h =
  Fmt.pf fmt "n=%d mean=%.1f min=%d max=%d" h.count (mean h) h.min_value
    h.max_value;
  List.iter
    (fun (lo, hi, c) ->
      if lo = hi then Fmt.pf fmt "@.  [%d] %d" lo c
      else Fmt.pf fmt "@.  [%d,%d] %d" lo hi c)
    (nonempty_buckets h)
