(* The metrics registry: named counters, gauges (with sample series) and
   log-scale histograms, registered on first use and exported as
   JSON-lines or a human-readable table.

   Registration is a hashtable lookup; instrumentation sites that sit on
   a truly hot path should accumulate locally and flush deltas at a
   quiescent point (as the simulation kernel does at the end of [run]). *)

type counter = { mutable c_value : int }

type gauge = {
  mutable g_samples : (float * float) list;  (* (x, value), newest first *)
  mutable g_last : float option;
}

type histogram = { h_hist : Histogram.t }

type metric = Counter of counter | Gauge of gauge | Hist of histogram

type t = {
  table : (string, metric) Hashtbl.t;
  mutable names : string list;  (* registration order, newest first *)
}

let create () = { table = Hashtbl.create 32; names = [] }

let register t name make =
  match Hashtbl.find_opt t.table name with
  | Some m -> m
  | None ->
      let m = make () in
      Hashtbl.add t.table name m;
      t.names <- name :: t.names;
      m

let kind_error name want =
  invalid_arg (Printf.sprintf "Metrics: %s is not a %s" name want)

let counter t name =
  match register t name (fun () -> Counter { c_value = 0 }) with
  | Counter c -> c
  | _ -> kind_error name "counter"

let gauge t name =
  match
    register t name (fun () ->
        Gauge { g_samples = []; g_last = None })
  with
  | Gauge g -> g
  | _ -> kind_error name "gauge"

let histogram t name =
  match
    register t name (fun () ->
        Hist { h_hist = Histogram.create () })
  with
  | Hist h -> h
  | _ -> kind_error name "histogram"

let incr ?(by = 1) c = c.c_value <- c.c_value + by
let counter_value c = c.c_value

let set ?x g v =
  let x =
    match x with
    | Some x -> x
    | None -> float_of_int (List.length g.g_samples)
  in
  g.g_samples <- (x, v) :: g.g_samples;
  g.g_last <- Some v

let last g = g.g_last
let samples g = List.rev g.g_samples

let observe h v = Histogram.observe h.h_hist v
let hist h = h.h_hist

(* --- lookups (for guards and tests) --- *)

let find_counter t name =
  match Hashtbl.find_opt t.table name with
  | Some (Counter c) -> Some c.c_value
  | _ -> None

let find_gauge t name =
  match Hashtbl.find_opt t.table name with
  | Some (Gauge g) -> g.g_last
  | _ -> None

let find_histogram t name =
  match Hashtbl.find_opt t.table name with
  | Some (Hist h) -> Some h.h_hist
  | _ -> None

let names t = List.rev t.names

let reset t =
  Hashtbl.reset t.table;
  t.names <- []

(* --- export --- *)

let metric_jsonl buf name metric =
  let line j =
    Buffer.add_string buf (Json.to_string j);
    Buffer.add_char buf '\n'
  in
  match metric with
  | Counter c ->
      line
        (Json.Obj
           [
             ("type", Json.Str "counter");
             ("name", Json.Str name);
             ("value", Json.Int c.c_value);
           ])
  | Gauge g ->
      List.iter
        (fun (x, v) ->
          line
            (Json.Obj
               [
                 ("type", Json.Str "gauge");
                 ("name", Json.Str name);
                 ("x", Json.Float x);
                 ("value", Json.Float v);
               ]))
        (samples g)
  | Hist h ->
      let hh = h.h_hist in
      line
        (Json.Obj
           [
             ("type", Json.Str "histogram");
             ("name", Json.Str name);
             ("count", Json.Int (Histogram.count hh));
             ("sum", Json.Float (Histogram.sum hh));
             ("min", Json.Int (Histogram.min_value hh));
             ("max", Json.Int (Histogram.max_value hh));
             ( "buckets",
               Json.List
                 (List.map
                    (fun (lo, hi, c) ->
                      Json.Obj
                        [
                          ("lo", Json.Int lo);
                          ("hi", Json.Int hi);
                          ("count", Json.Int c);
                        ])
                    (Histogram.nonempty_buckets hh)) );
           ])

let to_jsonl t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun name ->
      match Hashtbl.find_opt t.table name with
      | Some m -> metric_jsonl buf name m
      | None -> ())
    (names t);
  Buffer.contents buf

let to_table t =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "%-36s %-10s %s\n" "metric" "kind" "value";
  List.iter
    (fun name ->
      match Hashtbl.find_opt t.table name with
      | Some (Counter c) -> add "%-36s %-10s %d\n" name "counter" c.c_value
      | Some (Gauge g) ->
          add "%-36s %-10s %s (%d samples)\n" name "gauge"
            (match g.g_last with
            | Some v -> Printf.sprintf "%.3f" v
            | None -> "-")
            (List.length g.g_samples)
      | Some (Hist h) ->
          let hh = h.h_hist in
          add "%-36s %-10s n=%d mean=%.1f min=%d max=%d\n" name "histogram"
            (Histogram.count hh) (Histogram.mean hh) (Histogram.min_value hh)
            (Histogram.max_value hh)
      | None -> ())
    (names t);
  Buffer.contents buf
