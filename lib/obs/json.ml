(* Minimal JSON: enough of an emitter to produce Chrome trace_event files
   and JSON-lines metrics, and enough of a parser to validate them in
   tests and consume flow reports in CI.  No external dependency. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* --- emission --- *)

let add_escaped buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      (* JSON has no NaN/infinity literals *)
      if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.12g" f)
      else Buffer.add_string buf "null"
  | Str s ->
      Buffer.add_char buf '"';
      add_escaped buf s;
      Buffer.add_char buf '"'
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          add_escaped buf k;
          Buffer.add_string buf "\":";
          emit buf v)
        fields;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  emit buf j;
  Buffer.contents buf

let pp fmt j = Fmt.string fmt (to_string j)

(* --- parsing --- *)

exception Parse_error of string

let parse_exn s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then fail "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char buf '"'; advance ()
               | '\\' -> Buffer.add_char buf '\\'; advance ()
               | '/' -> Buffer.add_char buf '/'; advance ()
               | 'b' -> Buffer.add_char buf '\b'; advance ()
               | 'f' -> Buffer.add_char buf '\012'; advance ()
               | 'n' -> Buffer.add_char buf '\n'; advance ()
               | 'r' -> Buffer.add_char buf '\r'; advance ()
               | 't' -> Buffer.add_char buf '\t'; advance ()
               | 'u' ->
                   if !pos + 4 >= n then fail "short \\u escape";
                   let hex = String.sub s (!pos + 1) 4 in
                   let code =
                     try int_of_string ("0x" ^ hex)
                     with _ -> fail "bad \\u escape"
                   in
                   (* ASCII only; anything wider becomes '?' (we never emit it) *)
                   Buffer.add_char buf
                     (if code < 128 then Char.chr code else '?');
                   pos := !pos + 5
               | _ -> fail "unknown escape");
            go ()
        | c -> Buffer.add_char buf c; advance (); go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') text then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt text with
          | Some f -> Float f
          | None -> fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin advance (); List [] end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin advance (); Obj [] end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let parse s =
  match parse_exn s with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

(* --- accessors --- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_list = function List items -> Some items | _ -> None

let to_number = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None

let to_str = function Str s -> Some s | _ -> None
