(** The unified verification report: one [assemble] runs the whole
    methodology — the four-level flow, the static lints and the fault
    campaign — under a single governor tree with a {!Symbad_gov.Ledger}
    attached and telemetry on, then snapshots everything the run left
    behind into one self-contained record.

    The record carries the verdict table, the lint diagnostics, the
    per-span self-time profile, the merged counters and histograms (all
    worker-lane contributions included via the telemetry-buffer merge),
    the budget waterfall and a trace summary, and renders as JSON or
    markdown.

    Determinism: with [~timings:false] the rendered forms contain only
    simulated-time and logical-spend figures and are byte-identical at
    any pool width (the property `symbad report` is md5-tested on).
    Host timing is identified by naming convention — counters and
    histograms suffixed [_us] carry host microseconds and are zeroed
    (counts kept); [_ns] histograms carry simulated time and are
    reported in full; gauges are omitted entirely. *)

type profile_row = {
  cat : string;
  name : string;
  count : int;
  wall_us : float;  (** total inclusive host time *)
  self_us : float;  (** total minus direct children (clamped at 0) *)
}

type hist_row = { h_count : int; h_sum : float; h_min : int; h_max : int }

type t = {
  seed : int;
  workload : Symbad_core.Face_app.workload;
  flow : Symbad_core.Flow.t;
  lint_reports : Symbad_lint.Lint.report list;
  lint : Symbad_lint.Lint.report;  (** the reports merged *)
  faults : Symbad_resil.Campaign.report option;
  ledger : Symbad_gov.Ledger.t;
  gov_conflicts : int;
      (** root governor spend; equals {!Symbad_gov.Ledger.spent_conflicts}
          of [ledger] — the invariant the report tests assert *)
  gov_patterns : int;
  profile : profile_row list;  (** unordered; rendering sorts *)
  counters : (string * int) list;  (** name-sorted *)
  histograms : (string * hist_row) list;  (** name-sorted *)
  span_total : int;
  spans_by_cat : (string * int) list;  (** cat-sorted *)
  dropped : int;  (** telemetry emissions lost (should be 0) *)
  all_passed : bool;
}

val assemble :
  ?pool:Symbad_par.Par.pool ->
  ?cache:Symbad_cache.Cache.t ->
  ?seed:int ->
  ?workload:Symbad_core.Face_app.workload ->
  ?budget:Symbad_gov.Budget.t ->
  ?faults:bool ->
  ?trials_per_kind:int ->
  ?escalate:bool ->
  unit ->
  t
(** Run everything and snapshot the result.  [cache] hands the flow's
    level 4 the content-addressed verdict store; telemetry is on for
    the whole run, so hits/misses surface in the report's merged
    counters ([cache.hits] / [cache.misses]).  [seed] defaults to 1,
    [workload] to {!Symbad_core.Face_app.default_workload}, [budget] to
    unlimited, [faults] to [true] (the campaign always runs the smoke
    workload; [trials_per_kind] defaults to 1 to keep the report
    cheap).

    [escalate] (default [false]) runs the lint-to-proof escalation on
    every lint-corpus report and inside the flow's level 4: warnings
    whose rule defines a proof obligation are discharged with the model
    checker and re-emitted as proved ([Info]) or disproved ([Error],
    with a counterexample).  Proved-out warnings stop counting against
    the report verdict; disproved ones fail it.

    Telemetry is reset and force-enabled for the duration; it is left
    populated on return (the CLI exports the Chrome trace from it — the
    ledger's spend is already replayed onto counter tracks), and the
    enabled flag is restored for callers that had it off. *)

val to_json : ?timings:bool -> t -> string
(** One JSON document (trailing newline).  [~timings:false] scrubs host
    timing per the convention above for byte-stable comparison. *)

val to_markdown : ?timings:bool -> t -> string
(** The same report as one markdown document. *)
