(* The unified verification report.

   [assemble] runs everything the methodology prescribes for one workload
   — the four-level flow, the static lints, the fault campaign — under a
   single governor tree with a ledger attached, with telemetry on, and
   snapshots what the run left behind (span profile, merged counters and
   histograms, trace summary, budget waterfall) into one record that
   renders as JSON or markdown.

   Determinism contract: everything in the rendered forms is either
   derived from simulated time / logical spend (byte-identical at any
   pool width and across runs) or is host timing.  Host timing follows
   one naming convention so [~timings:false] can zero it mechanically:

   - counters suffixed [_us] hold host microseconds — zeroed (key kept);
   - histograms suffixed [_ns] hold simulated time — reported in full;
   - histograms suffixed [_us] hold host time — count kept, stats zeroed;
   - gauges are ratios over host time — omitted from the report;
   - span wall/self times are host time — zeroed, counts kept.

   With [~timings:false] the whole document is therefore md5-comparable
   across [--jobs] widths, while the counts still include every
   worker-lane contribution (the telemetry-buffer merge). *)

module Obs = Symbad_obs.Obs
module Tracer = Symbad_obs.Tracer
module Metrics = Symbad_obs.Metrics
module Histogram = Symbad_obs.Histogram
module Json = Symbad_obs.Json
module Gov = Symbad_gov.Gov
module Budget = Symbad_gov.Budget
module Ledger = Symbad_gov.Ledger
module Lint = Symbad_lint.Lint
module Campaign = Symbad_resil.Campaign
module Recovery = Symbad_resil.Recovery
open Symbad_core

type profile_row = {
  cat : string;
  name : string;
  count : int;
  wall_us : float;  (** total inclusive host time *)
  self_us : float;  (** total minus direct children (clamped at 0) *)
}

type hist_row = { h_count : int; h_sum : float; h_min : int; h_max : int }

type t = {
  seed : int;
  workload : Face_app.workload;
  flow : Flow.t;
  lint_reports : Lint.report list;
  lint : Lint.report;  (** the reports merged *)
  faults : Campaign.report option;
  ledger : Ledger.t;
  gov_conflicts : int;  (** root governor spend, = ledger sums *)
  gov_patterns : int;
  profile : profile_row list;  (** unordered; rendering sorts *)
  counters : (string * int) list;  (** name-sorted *)
  histograms : (string * hist_row) list;  (** name-sorted *)
  span_total : int;
  spans_by_cat : (string * int) list;  (** cat-sorted *)
  dropped : int;
  all_passed : bool;
}

(* --- assembly --------------------------------------------------------- *)

let prop_pairs props =
  List.map (fun p -> (Symbad_mc.Prop.name p, Symbad_mc.Prop.formula p)) props

(* The lintable corpus: the level-4 RTL modules and the recovery
   controller, each with its properties (property cones keep
   verification-only registers live, so lint agrees with the engines).
   The instrumented reconfiguration software is not re-linted here: the
   flow's own level-3 verification already covers the program, and
   re-deriving it would mean running levels 1-3 a second time. *)
let lint_corpus ?pool ~gov ?(escalate = false) () =
  let run nl properties =
    let properties = prop_pairs properties in
    let r = Lint.run_netlist ?pool ~gov ~properties nl in
    if escalate then Lint.escalate ?pool ~gov ~properties nl r else r
  in
  let rtl =
    List.map
      (fun (m : Level4.rtl_module) ->
        run m.Level4.netlist m.Level4.properties)
      (Level4.modules ())
  in
  let recovery =
    let nl = Recovery.netlist () in
    [ run nl (Recovery.properties nl) ]
  in
  rtl @ recovery

let profile_of_spans spans =
  (* self time = inclusive minus direct children, via one parent pass *)
  let child_sum : (int, float) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun (s : Tracer.completed) ->
      match s.parent with
      | None -> ()
      | Some p ->
          let cur = Option.value ~default:0. (Hashtbl.find_opt child_sum p) in
          Hashtbl.replace child_sum p (cur +. s.dur_us))
    spans;
  let rows : (string * string, profile_row) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (s : Tracer.completed) ->
      let children =
        Option.value ~default:0. (Hashtbl.find_opt child_sum s.id)
      in
      let self = Float.max 0. (s.dur_us -. children) in
      let key = (s.cat, s.name) in
      let prev =
        match Hashtbl.find_opt rows key with
        | Some r -> r
        | None ->
            { cat = s.cat; name = s.name; count = 0; wall_us = 0.; self_us = 0. }
      in
      Hashtbl.replace rows key
        {
          prev with
          count = prev.count + 1;
          wall_us = prev.wall_us +. s.dur_us;
          self_us = prev.self_us +. self;
        })
    spans;
  Hashtbl.fold (fun _ r acc -> r :: acc) rows []

let by_cat spans =
  let tbl : (string, int) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (s : Tracer.completed) ->
      let cur = Option.value ~default:0 (Hashtbl.find_opt tbl s.cat) in
      Hashtbl.replace tbl s.cat (cur + 1))
    spans;
  List.sort compare (Hashtbl.fold (fun c n acc -> (c, n) :: acc) tbl [])

let assemble ?pool ?cache ?(seed = 1) ?(workload = Face_app.default_workload)
    ?budget ?(faults = true) ?(trials_per_kind = 1) ?(escalate = false) () =
  let had = Obs.enabled () in
  Obs.reset ();
  Obs.set_enabled true;
  (* telemetry is left in place on exit (the CLI exports the trace from
     it); only the flag is restored for callers that had it off *)
  Fun.protect ~finally:(fun () -> if not had then Obs.set_enabled false)
  @@ fun () ->
  let ledger = Ledger.create () in
  let root =
    Gov.create ~label:"run" ~ledger
      (Option.value budget ~default:Budget.unlimited)
  in
  let flow =
    Flow.run ?pool ?cache ~seed ~workload ~escalate
      ~gov:(Gov.slice ~label:"flow" ~fraction:0.6 root)
      ()
  in
  let lint_reports =
    lint_corpus ?pool
      ~gov:(Gov.slice ~label:"lint" ~fraction:0.5 root)
      ~escalate ()
  in
  let lint = Lint.merge ~target:"all" lint_reports in
  let fault_report =
    if not faults then None
    else
      Some
        (Campaign.run ?pool
           ~gov:(Gov.slice ~label:"faults" ~fraction:1.0 root)
           ~trials_per_kind ~workload:Face_app.smoke_workload ~seed ())
  in
  (* snapshot the telemetry the run left behind *)
  let tracer = Obs.tracer () in
  let spans = Tracer.completed_spans tracer in
  let m = Obs.metrics () in
  (* [Metrics.names] is registration-ordered; sort so the report never
     depends on which instrument a run happened to touch first *)
  let metric_names = List.sort compare (Metrics.names m) in
  let counters =
    List.filter_map
      (fun n -> Option.map (fun v -> (n, v)) (Metrics.find_counter m n))
      metric_names
  in
  let histograms =
    List.filter_map
      (fun n ->
        Option.map
          (fun h ->
            ( n,
              {
                h_count = Histogram.count h;
                h_sum = Histogram.sum h;
                h_min = Histogram.min_value h;
                h_max = Histogram.max_value h;
              } ))
          (Metrics.find_histogram m n))
      metric_names
  in
  (* the trace-side budget waterfall: cumulative spend as counter tracks *)
  Ledger.counter_track ledger tracer;
  let all_passed =
    flow.Flow.all_passed
    && Lint.errors lint = 0
    &&
    match fault_report with
    | Some r -> r.Campaign.passed
    | None -> true
  in
  {
    seed;
    workload;
    flow;
    lint_reports;
    lint;
    faults = fault_report;
    ledger;
    gov_conflicts = Gov.spent_conflicts root;
    gov_patterns = Gov.spent_patterns root;
    profile = profile_of_spans spans;
    counters;
    histograms;
    span_total = List.length spans;
    spans_by_cat = by_cat spans;
    dropped = Obs.dropped_count ();
    all_passed;
  }

(* --- timing scrub ------------------------------------------------------ *)

let has_suffix s suf =
  let ls = String.length s and lf = String.length suf in
  ls >= lf && String.sub s (ls - lf) lf = suf

let host_counter n = has_suffix n "_us"
let host_histogram n = has_suffix n "_us"

let scrub_counter ~timings (n, v) = (n, if timings || not (host_counter n) then v else 0)

let scrub_hist ~timings (n, h) =
  if timings || not (host_histogram n) then (n, h)
  else (n, { h with h_sum = 0.; h_min = 0; h_max = 0 })

let sorted_profile ~timings rows =
  if timings then
    List.sort
      (fun a b ->
        match compare b.self_us a.self_us with
        | 0 -> compare (a.cat, a.name) (b.cat, b.name)
        | c -> c)
      rows
  else
    List.map (fun r -> { r with wall_us = 0.; self_us = 0. }) rows
    |> List.sort (fun a b ->
           match compare b.count a.count with
           | 0 -> compare (a.cat, a.name) (b.cat, b.name)
           | c -> c)

(* --- JSON -------------------------------------------------------------- *)

let workload_json (w : Face_app.workload) =
  Json.Obj
    [
      ("size", Json.Int w.Face_app.size);
      ("identities", Json.Int w.Face_app.identities);
      ("frames", Json.Int (List.length w.Face_app.frames));
    ]

let to_json ?(timings = true) t =
  let profile_json r =
    Json.Obj
      [
        ("cat", Json.Str r.cat);
        ("name", Json.Str r.name);
        ("count", Json.Int r.count);
        ("wall_us", Json.Float r.wall_us);
        ("self_us", Json.Float r.self_us);
      ]
  in
  let hist_json (n, h) =
    ( n,
      Json.Obj
        [
          ("count", Json.Int h.h_count);
          ("sum", Json.Float h.h_sum);
          ("min", Json.Int h.h_min);
          ("max", Json.Int h.h_max);
        ] )
  in
  let doc =
    Json.Obj
      [
        ("seed", Json.Int t.seed);
        ("workload", workload_json t.workload);
        ("all_passed", Json.Bool t.all_passed);
        ("flow", Json.parse_exn (Flow.to_json ~timings t.flow));
        ("lint", Lint.to_json t.lint);
        ( "faults",
          match t.faults with Some r -> Campaign.to_json r | None -> Json.Null
        );
        ("budget", Ledger.to_json ~timings t.ledger);
        ( "gov",
          Json.Obj
            [
              ("spent_conflicts", Json.Int t.gov_conflicts);
              ("spent_patterns", Json.Int t.gov_patterns);
              ("ledger_conflicts", Json.Int (Ledger.spent_conflicts t.ledger));
              ("ledger_patterns", Json.Int (Ledger.spent_patterns t.ledger));
            ] );
        ( "profile",
          Json.List (List.map profile_json (sorted_profile ~timings t.profile))
        );
        ( "counters",
          Json.Obj
            (List.map
               (fun (n, v) -> (n, Json.Int v))
               (List.map (scrub_counter ~timings) t.counters)) );
        ( "histograms",
          Json.Obj (List.map hist_json (List.map (scrub_hist ~timings) t.histograms))
        );
        ( "trace",
          Json.Obj
            [
              ("spans", Json.Int t.span_total);
              ( "by_cat",
                Json.Obj
                  (List.map (fun (c, n) -> (c, Json.Int n)) t.spans_by_cat) );
              ("dropped", Json.Int t.dropped);
            ] );
      ]
  in
  Json.to_string doc ^ "\n"

(* --- markdown ---------------------------------------------------------- *)

let outcome_cell (v : Verdict.t) =
  match v.Verdict.outcome with
  | Verdict.Coverage { hit; total } ->
      Printf.sprintf "coverage %d/%d" hit total
  | o -> Verdict.outcome_label o

let to_markdown ?(timings = true) t =
  let b = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  let w = t.workload in
  line "# Symbad verification report";
  line "";
  line "- workload: %d frames, %dx%d pixels, %d identities"
    (List.length w.Face_app.frames)
    w.Face_app.size w.Face_app.size w.Face_app.identities;
  line "- seed: %d" t.seed;
  line "- overall: %s" (if t.all_passed then "**PASS**" else "**FAIL**");
  line "";
  line "## Verdicts";
  line "";
  line "| level | check | verdict | passed | detail |";
  line "|------:|-------|---------|:------:|--------|";
  List.iter
    (fun (l : Flow.level_report) ->
      List.iter
        (fun (v : Verdict.t) ->
          line "| %d | %s | %s | %s | %s |" l.Flow.level v.Verdict.name
            (outcome_cell v)
            (if v.Verdict.passed then "yes" else "no")
            v.Verdict.detail)
        l.Flow.verifications)
    t.flow.Flow.levels;
  line "";
  line "## Lint";
  line "";
  line "| target | rules | errors | warnings | skipped rules |";
  line "|--------|------:|-------:|---------:|--------------:|";
  List.iter
    (fun (r : Lint.report) ->
      line "| %s | %d | %d | %d | %d |" r.Lint.target
        (List.length r.Lint.rules_run)
        (Lint.errors r) (Lint.warnings r)
        (List.length r.Lint.skipped_rules))
    t.lint_reports;
  line "";
  (match t.faults with
  | None -> ()
  | Some r ->
      line "## Fault campaign";
      line "";
      Buffer.add_string b (Campaign.to_markdown r);
      line "");
  line "## Budget waterfall";
  line "";
  line "- spent: %d conflicts, %d patterns (governor) / %d, %d (ledger)"
    t.gov_conflicts t.gov_patterns
    (Ledger.spent_conflicts t.ledger)
    (Ledger.spent_patterns t.ledger);
  line "";
  Buffer.add_string b (Ledger.to_markdown t.ledger);
  line "";
  line "## Profile";
  line "";
  line "| cat | span | count | wall ms | self ms |";
  line "|-----|------|------:|--------:|--------:|";
  List.iter
    (fun r ->
      line "| %s | %s | %d | %.3f | %.3f |" r.cat r.name r.count
        (r.wall_us /. 1e3) (r.self_us /. 1e3))
    (sorted_profile ~timings t.profile);
  line "";
  line "## Counters";
  line "";
  line "| counter | value |";
  line "|---------|------:|";
  List.iter
    (fun (n, v) -> line "| %s | %d |" n v)
    (List.map (scrub_counter ~timings) t.counters);
  line "";
  line "## Histograms";
  line "";
  line "| histogram | count | sum | min | max |";
  line "|-----------|------:|----:|----:|----:|";
  List.iter
    (fun (n, h) ->
      line "| %s | %d | %.0f | %d | %d |" n h.h_count h.h_sum h.h_min h.h_max)
    (List.map (scrub_hist ~timings) t.histograms);
  line "";
  line "## Trace";
  line "";
  line "- %d spans (%s), %d dropped emissions" t.span_total
    (String.concat ", "
       (List.map (fun (c, n) -> Printf.sprintf "%s: %d" c n) t.spans_by_cat))
    t.dropped;
  Buffer.contents b
