(* An incremental verification session: one persistent solver pair per
   (netlist, property), frames unrolled on demand, each bound posed as a
   retractable query through an activation literal (see the convention
   in Symbad_sat.Solver.add_clause).  Learned clauses survive across
   bounds, so bound k+1 starts from everything the solver derived while
   closing bounds 0..k — this is what makes the level-4 BMC loop
   incremental instead of re-bit-blasting the netlist per bound.

   Two sub-solvers back one session:

   - the BASE instance unrolls from reset.  Bound k adds a fresh
     activation variable [a], the guarded clause [-a \/ -P@k], and asks
     [solve ~assumptions:[a]].  Unsat retires the guard ([-a]) and
     asserts the now-proved [P@k] as a unit, strengthening every later
     bound and keeping a record that bound k is closed.

   - the STEP instance unrolls from a free initial state.  The inductive
     step at k is pure assumption work — [P@0 .. P@k-1, -P@k] — so
     nothing is ever asserted and the same instance serves every k.

   Property literals are cached per frame: re-posing a bound re-uses the
   cached literal instead of re-blasting the formula, so a repeated
   query allocates no variables (asserted by the nvars-drift test). *)

module Solver = Symbad_sat.Solver
module Unroll = Symbad_hdl.Unroll
module Netlist = Symbad_hdl.Netlist
module Obs = Symbad_obs.Obs
module Json = Symbad_obs.Json

type sub = {
  solver : Solver.t;
  unroll : Unroll.t;
  (* frame index -> literal of the property instance anchored there *)
  lits : (int, int) Hashtbl.t;
}

type t = {
  nl : Netlist.t;
  prop : Prop.t;
  mutable base : sub option;
  mutable step : sub option;
  (* bounds the base instance has closed (P@k proved): re-posing one
     must not re-solve — the guard clause is gone once P@k is a unit *)
  proved : (int, unit) Hashtbl.t;
}

let create nl prop =
  let prop = Prop.validate nl prop in
  if Obs.enabled () then Obs.incr_counter "mc.sessions";
  { nl; prop; base = None; step = None; proved = Hashtbl.create 16 }

let netlist t = t.nl
let prop t = t.prop

let make_sub ~init nl =
  let solver = Solver.create 0 in
  let unroll = Unroll.create ~init solver nl in
  { solver; unroll; lits = Hashtbl.create 32 }

let base_sub t =
  match t.base with
  | Some s -> s
  | None ->
      let s = make_sub ~init:Unroll.Reset t.nl in
      t.base <- Some s;
      s

let step_sub t =
  match t.step with
  | Some s -> s
  | None ->
      let s = make_sub ~init:Unroll.Free t.nl in
      t.step <- Some s;
      s

(* Frames needed to anchor the property at frame [i]: a step property
   reads frame [i + 1] and the trace convention keeps one successor
   frame around in either case (mirrors the historical encoding, which
   unrolled to [k + 1] for invariants and [k + 2] for step props). *)
let frames_for prop i = if Prop.is_step prop then i + 2 else i + 1

(* The property literal at frame [i], blasted once and cached. *)
let prop_lit t sub i =
  match Hashtbl.find_opt sub.lits i with
  | Some l -> l
  | None ->
      Unroll.unroll_to sub.unroll (frames_for t.prop i);
      let l =
        if Prop.is_step t.prop then
          Unroll.bool_lit_step sub.unroll i (Prop.formula t.prop)
        else Unroll.bool_lit sub.unroll i (Prop.formula t.prop)
      in
      Hashtbl.add sub.lits i l;
      l

let trace_span prop k = if Prop.is_step prop then k + 1 else k

let extract_trace sub upto nl =
  List.init (upto + 1) (fun i ->
      {
        Trace.inputs =
          List.map
            (fun (n, _) -> (n, Unroll.input_value sub.solver sub.unroll i n))
            (Netlist.inputs nl);
        regs =
          List.map
            (fun (r : Netlist.register) ->
              ( r.Netlist.name,
                Unroll.reg_value sub.solver sub.unroll i r.Netlist.name ))
            (Netlist.registers nl);
      })

type base_result = Base_holds | Base_cex of Trace.t | Base_unknown

let check_bound ?max_conflicts ?gov t k =
  if k < 0 then invalid_arg "Session.check_bound: negative bound";
  if Hashtbl.mem t.proved k then Base_holds
  else
    Obs.span ~cat:"mc"
      ~args:
        [
          ("module", Json.Str (Netlist.name t.nl));
          ("property", Json.Str (Prop.name t.prop));
          ("bound", Json.Int k);
        ]
      "bmc.bound"
      (fun () ->
        let sub = base_sub t in
        let pl = prop_lit t sub k in
        let act = Solver.new_var sub.solver in
        Solver.add_clause sub.solver [ -act; -pl ];
        let o = Solver.solve_outcome ~assumptions:[ act ] ?max_conflicts ?gov
            sub.solver in
        match o.Solver.result with
        | Solver.Sat ->
            (* read the model before any add_clause backtracks it away *)
            let tr = extract_trace sub (trace_span t.prop k) t.nl in
            Solver.add_clause sub.solver [ -act ];
            Base_cex tr
        | Solver.Unsat ->
            (* the guard is spent; P@k is now a theorem of the instance
               and asserting it seeds learning for every later bound *)
            Solver.add_clause sub.solver [ -act ];
            Solver.add_clause sub.solver [ pl ];
            Hashtbl.replace t.proved k ();
            Base_holds
        | Solver.Unknown ->
            Solver.add_clause sub.solver [ -act ];
            Base_unknown)

type step_result = Inductive | Cti of Trace.t | Step_unknown

let induction ?max_conflicts ?gov t k =
  if k < 1 then invalid_arg "Session.induction: k must be >= 1";
  Obs.span ~cat:"mc"
    ~args:
      [
        ("module", Json.Str (Netlist.name t.nl));
        ("property", Json.Str (Prop.name t.prop));
        ("k", Json.Int k);
      ]
    "bmc.induction"
    (fun () ->
      let sub = step_sub t in
      (* pure assumption query: P@0..k-1 and -P@k, nothing asserted, so
         the one free-initial-state instance serves every k *)
      let assumptions =
        List.init k (fun i -> prop_lit t sub i) @ [ -(prop_lit t sub k) ]
      in
      let o =
        Solver.solve_outcome ~assumptions ?max_conflicts ?gov sub.solver
      in
      match o.Solver.result with
      | Solver.Unsat -> Inductive
      | Solver.Sat -> Cti (extract_trace sub (trace_span t.prop k) t.nl)
      | Solver.Unknown -> Step_unknown)

let base_nvars t =
  match t.base with Some s -> Solver.nvars s.solver | None -> 0

let step_nvars t =
  match t.step with Some s -> Solver.nvars s.solver | None -> 0
