(** Incremental verification sessions: one persistent solver pair per
    (netlist, property).

    Frames are unrolled on demand and each BMC bound is posed as a
    retractable query through an activation literal (the convention
    documented on {!Symbad_sat.Solver.add_clause}), so learned clauses
    survive across bounds and into the inductive step.  {!Bmc} and
    {!Engine} are thin drivers over this module.

    Sessions are single-domain state: create and drive a session from
    one domain (the [Par] fan-outs in {!Engine.check_all} give each
    property its own session inside its own job). *)

type t

val create : Symbad_hdl.Netlist.t -> Prop.t -> t
(** Validates the property against the netlist (raises
    [Invalid_argument] as {!Prop.validate} does).  Solvers are built
    lazily: a session that only runs induction never pays for the
    reset-initialised instance, and vice versa. *)

val netlist : t -> Symbad_hdl.Netlist.t
val prop : t -> Prop.t

type base_result =
  | Base_holds  (** no counterexample ending at exactly this bound *)
  | Base_cex of Trace.t  (** concrete reset-path violation *)
  | Base_unknown  (** resource budget exhausted inside the SAT call *)

val check_bound :
  ?max_conflicts:int -> ?gov:Symbad_gov.Gov.t -> t -> int -> base_result
(** [check_bound t k] decides whether some reset path violates the
    property at exactly depth [k] (bounds below [k] are {e not}
    re-examined — drive bounds in ascending order for BMC semantics).
    On [Base_holds] the bound is recorded as closed and [P@k] is
    asserted into the instance; re-posing a closed bound returns
    immediately without solving or allocating variables.  [gov] bounds
    and is charged for the embedded SAT call, exactly as
    {!Symbad_sat.Solver.solve_outcome}. *)

type step_result =
  | Inductive
  | Cti of Trace.t
      (** counterexample-to-induction: a [k]-step free-state path
          satisfying the property that then violates it — not
          necessarily reachable *)
  | Step_unknown  (** resource budget exhausted inside the SAT call *)

val induction :
  ?max_conflicts:int -> ?gov:Symbad_gov.Gov.t -> t -> int -> step_result
(** The inductive step at depth [k >= 1] over the free-initial-state
    instance: assumes [P@0 .. P@k-1] and [-P@k] — nothing is asserted,
    so one instance serves every [k] and repeated queries are cheap. *)

val base_nvars : t -> int
(** Variable count of the reset-initialised instance (0 before first
    use) — exposed so tests can assert the absence of [nvars] drift on
    repeated queries. *)

val step_nvars : t -> int
(** Same for the free-initial-state instance. *)
