(* Explicit-state reachability for small netlists.

   Enumerates every input valuation at every reachable state, so it is a
   decision procedure (Proved / Falsified) whenever the state and input
   spaces fit in memory — the case for the control-dominated RTL modules
   of the case study.  Used both as a reference oracle for the SAT-based
   engines and to answer "reachability checking" queries directly. *)

module Hdl = Symbad_hdl
module Netlist = Symbad_hdl.Netlist
module Bitvec = Symbad_hdl.Bitvec
module Expr = Symbad_hdl.Expr

type result =
  | Proved of { states : int }
  | Falsified of Trace.t
  | Too_large

(* Packed state: register values in declaration order. *)
let pack values = values

let total_input_bits nl =
  List.fold_left (fun acc (_, w) -> acc + w) 0 (Netlist.inputs nl)

(* All input valuations as assoc lists, by counting a flat index. *)
let input_valuations nl =
  let inputs = Netlist.inputs nl in
  let bits = total_input_bits nl in
  List.init (1 lsl bits) (fun idx ->
      let rec split idx = function
        | [] -> []
        | (n, w) :: rest ->
            (n, Bitvec.make ~width:w (idx land ((1 lsl w) - 1)))
            :: split (idx lsr w) rest
      in
      split idx inputs)

let check ?(max_states = 1 lsl 20) ?(max_input_bits = 12)
    ?(max_evals = 1 lsl 22) nl prop =
  let prop = Prop.validate nl prop in
  if total_input_bits nl > max_input_bits then Too_large
  else begin
    let formula = Prop.formula prop in
    let valuations = input_valuations nl in
    let registers = Netlist.registers nl in
    let init =
      List.map (fun (r : Netlist.register) -> r.Netlist.init) registers
    in
    let lookup env n =
      match List.assoc_opt n env with
      | Some v -> v
      | None -> invalid_arg ("Explicit: unbound " ^ n)
    in
    let eval state inputs e =
      let env_regs =
        List.map2
          (fun (r : Netlist.register) v -> (r.Netlist.name, v))
          registers state
      in
      Expr.eval ~input:(lookup inputs) ~reg:(lookup env_regs) e
    in
    let next state inputs =
      List.map (fun (r : Netlist.register) -> eval state inputs r.Netlist.next)
        registers
    in
    (* step properties read primed registers from the successor state *)
    let eval_prop state succ inputs =
      let env =
        List.concat
          (List.map2
             (fun (r : Netlist.register) (cur, nxt) ->
               [ (r.Netlist.name, cur); (r.Netlist.name ^ "'", nxt) ])
             registers
             (List.combine state succ))
      in
      Expr.eval ~input:(lookup inputs) ~reg:(lookup env) formula
    in
    let visited = Hashtbl.create 1024 in
    (* parent map for counterexample reconstruction *)
    let parent = Hashtbl.create 1024 in
    let queue = Queue.create () in
    Hashtbl.add visited (pack init) ();
    Queue.push init queue;
    let to_frame state inputs =
      {
        Trace.inputs =
          List.map (fun (n, v) -> (n, Bitvec.to_int v)) inputs;
        regs =
          List.map2
            (fun (r : Netlist.register) v -> (r.Netlist.name, Bitvec.to_int v))
            registers state;
      }
    in
    let rec rebuild state inputs acc =
      let frame = to_frame state inputs in
      match Hashtbl.find_opt parent (pack state) with
      | None -> frame :: acc
      | Some (prev_state, prev_inputs) ->
          rebuild prev_state prev_inputs (frame :: acc)
    in
    let exception Violation of Trace.t in
    let exception Blown_up in
    (* Tractability is the PRODUCT of states and input valuations, not
       either alone: a 12-bit-input design within the state cap still
       means billions of transition evaluations.  Count every (state,
       valuation) expansion and give up past the work budget. *)
    let evals = ref 0 in
    try
      while not (Queue.is_empty queue) do
        let state = Queue.pop queue in
        List.iter
          (fun inputs ->
            incr evals;
            if !evals > max_evals then raise Blown_up;
            let succ = next state inputs in
            let holds = Bitvec.to_int (eval_prop state succ inputs) = 1 in
            if not holds then raise (Violation (rebuild state inputs []));
            if not (Hashtbl.mem visited (pack succ)) then begin
              if Hashtbl.length visited >= max_states then raise Blown_up;
              Hashtbl.add visited (pack succ) ();
              Hashtbl.add parent (pack succ) (state, inputs);
              Queue.push succ queue
            end)
          valuations
      done;
      Proved { states = Hashtbl.length visited }
    with
    | Violation tr -> Falsified tr
    | Blown_up -> Too_large
  end

(* Reachable-state count, for reachability-checking reports. *)
let reachable_states ?(max_states = 1 lsl 20) ?(max_input_bits = 12)
    ?max_evals nl =
  match
    check ~max_states ~max_input_bits ?max_evals nl
      (Prop.make ~name:"true" (Expr.const ~width:1 1))
  with
  | Proved { states } -> Some states
  | Falsified _ -> None
  | Too_large -> None
