(* The level-4 model-checking engine.

   Strategy mirroring the paper's "model checking and SAT solving are
   used at this level": interleave BMC (counterexample hunting) with
   k-induction (proof attempts) for increasing k; fall back to explicit
   reachability when the design is small enough and induction fails.
   Every property receives either a proof certificate or a counter
   example, as the flow requires.

   Parallel portfolio: bounds are checked in windows of [jobs pool]
   depths fanned out on the pool, and the sequential decision procedure
   is replayed over the window results in ascending k — so the verdict
   (method, depth, trace) is identical to the one-core run at any pool
   width; a window of one depth IS the one-core run. *)

module Netlist = Symbad_hdl.Netlist
module Par = Symbad_par.Par
module Gov = Symbad_gov.Gov
module Degrade = Symbad_gov.Degrade

type verdict =
  | Proved of { method_ : string; depth : int }
  | Falsified of Trace.t
  | Unknown of { reason : string }

type report = {
  property : string;
  verdict : verdict;
  checked_depth : int;
}

(* One bound of the portfolio: the BMC base case at depth k, plus the
   inductive step when the base holds (exactly what the sequential loop
   would go on to run at that k). *)
let check_bound ~max_conflicts ~gov nl prop k =
  let base = Bmc.check ~max_conflicts ~gov ~depth:k nl prop in
  let induction =
    match base with
    | Bmc.Holds when k > 0 ->
        Some (Bmc.inductive_step ~max_conflicts ~gov ~k nl prop)
    | Bmc.Holds | Bmc.Counterexample _ | Bmc.Resource_out -> None
  in
  (base, induction)

(* Why a Resource_out happened, as seen from the window's parent
   governor (child charges have propagated by the time we scan). *)
let out_reason gov ~what =
  match Gov.exhaustion gov with
  | Some r -> Printf.sprintf "governor: %s" (Degrade.reason_string r)
  | None -> "SAT budget exhausted in " ^ what

let check ?pool ?(max_depth = 20) ?(max_conflicts = 200_000) ?gov nl prop =
  let pool = Par.get pool in
  let gov = Gov.get gov in
  let name = Prop.name prop in
  let fallback () =
    (* last resort: exact reachability if tractable *)
    match Explicit.check nl prop with
    | Explicit.Proved { states } ->
        { property = name;
          verdict = Proved { method_ = Printf.sprintf "reachability(%d states)" states; depth = max_depth };
          checked_depth = max_depth }
    | Explicit.Falsified tr ->
        { property = name; verdict = Falsified tr; checked_depth = max_depth }
    | Explicit.Too_large ->
        { property = name;
          verdict = Unknown { reason = Printf.sprintf "no proof within k=%d" max_depth };
          checked_depth = max_depth }
  in
  (* governed degradation: the best bound fully checked is k - 1 *)
  let degraded ~reason k =
    { property = name;
      verdict = Unknown { reason };
      checked_depth = max 0 (k - 1) }
  in
  let run ~attempt:_ =
    let rec loop k =
      if k > max_depth then fallback ()
      else if Gov.out_of_budget gov then
        degraded ~reason:(out_reason gov ~what:"BMC") k
      else begin
        let hi = min max_depth (k + Par.jobs pool - 1) in
        let window = List.init (hi - k + 1) (fun i -> k + i) in
        (* each job gets its conflict share before the fan-out, so the
           window results are identical at any pool width *)
        let shares = Gov.split ~label:"mc.window" gov (List.length window) in
        let results =
          Par.map ~label:"mc.bounds" pool
            (fun (k, gk) -> (k, check_bound ~max_conflicts ~gov:gk nl prop k))
            (List.combine window shares)
        in
        (* replay the sequential decision in ascending k *)
        let rec scan = function
          | [] -> loop (hi + 1)
          | (k, (base, induction)) :: rest -> (
              match base with
              | Bmc.Counterexample tr ->
                  { property = name; verdict = Falsified tr; checked_depth = k }
              | Bmc.Resource_out ->
                  degraded ~reason:(out_reason gov ~what:"BMC") k
              | Bmc.Holds -> (
                  match induction with
                  | None -> scan rest  (* k = 0: nothing to induct on yet *)
                  | Some Bmc.Inductive ->
                      { property = name;
                        verdict = Proved { method_ = "k-induction"; depth = k };
                        checked_depth = k }
                  | Some (Bmc.Cti _) -> scan rest
                  | Some Bmc.Induction_resource_out ->
                      (* the base case at k DID hold: k is fully checked *)
                      { property = name;
                        verdict =
                          Unknown { reason = out_reason gov ~what:"induction" };
                        checked_depth = k }))
        in
        scan results
      end
    in
    let report = loop 0 in
    (match (report.verdict, Gov.exhaustion gov) with
    | Unknown _, Some reason ->
        Gov.note_degraded gov ~what:(Printf.sprintf "mc:%s" name) reason
    | _ -> ());
    report
  in
  Gov.with_retry ~label:"mc" gov
    ~inconclusive:(fun r ->
      match r.verdict with Unknown _ -> true | Proved _ | Falsified _ -> false)
    run

let check_all ?pool ?max_depth ?max_conflicts ?gov nl props =
  (* per-property fan-out; each job replays the sequential engine over
     its own pre-split budget share, so the report list is identical at
     any pool width *)
  let pool = Par.get pool in
  let gov = Gov.get gov in
  match props with
  | [] -> []
  | props ->
      let shares = Gov.split ~label:"mc.properties" gov (List.length props) in
      Par.map ~label:"mc.properties" pool
        (fun (p, g) -> check ?max_depth ?max_conflicts ~gov:g nl p)
        (List.combine props shares)

let all_proved reports =
  List.for_all
    (fun r -> match r.verdict with Proved _ -> true | _ -> false)
    reports

let pp_verdict fmt = function
  | Proved { method_; depth } -> Fmt.pf fmt "proved (%s, k=%d)" method_ depth
  | Falsified tr -> Fmt.pf fmt "FALSIFIED (%d-cycle trace)" (Trace.length tr)
  | Unknown { reason } -> Fmt.pf fmt "unknown (%s)" reason

let pp_report fmt r =
  Fmt.pf fmt "%-28s %a" r.property pp_verdict r.verdict
