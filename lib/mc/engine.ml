(* The level-4 model-checking engine.

   Strategy mirroring the paper's "model checking and SAT solving are
   used at this level": interleave BMC (counterexample hunting) with
   k-induction (proof attempts) for increasing k; fall back to explicit
   reachability when the design is small enough and induction fails.
   Every property receives either a proof certificate or a counter
   example, as the flow requires.

   Incremental core: one Session per property — a persistent solver
   pair with frames unrolled on demand — so bound k+1 starts from the
   clauses learned closing bounds 0..k and the inductive step shares the
   same free-state instance across k.  Bounds advance in fixed-width
   windows purely for budget accounting: the governor's remaining
   allowance is split per window BEFORE the bounds run, with a share per
   bound, so conflict charges land per bound exactly as they did when
   each bound owned a throwaway solver — and the split is independent of
   the pool width, keeping verdicts byte-identical at any [--jobs].

   Parallelism lives one level up: [check_all] fans out one job per
   property, each job driving its own session sequentially. *)

module Netlist = Symbad_hdl.Netlist
module Par = Symbad_par.Par
module Gov = Symbad_gov.Gov
module Degrade = Symbad_gov.Degrade

(* Cache keys embed this (see Symbad_cache): bump on any change to the
   decision procedure, encodings or verdict semantics so stale verdicts
   can never be replayed against a different engine. *)
let version = "3"

type verdict =
  | Proved of { method_ : string; depth : int }
  | Falsified of Trace.t
  | Unknown of { reason : string }

type report = {
  property : string;
  verdict : verdict;
  checked_depth : int;
}

(* Budget-accounting window: bounds per governor split.  Fixed (not tied
   to the pool width) so the shares — and with them finite-budget
   verdicts — do not depend on [--jobs]. *)
let window_width = 4

(* One bound of the portfolio: the BMC base case at depth k, plus the
   inductive step when the base holds (exactly what the sequential loop
   would go on to run at that k). *)
let check_bound ~session ~max_conflicts ~gov k =
  let base = Session.check_bound ~max_conflicts ~gov session k in
  let induction =
    match base with
    | Session.Base_holds when k > 0 ->
        Some (Session.induction ~max_conflicts ~gov session k)
    | Session.Base_holds | Session.Base_cex _ | Session.Base_unknown -> None
  in
  (base, induction)

(* Why a Resource_out happened, as seen from the window's parent
   governor (child charges have propagated by the time we scan). *)
let out_reason gov ~what =
  match Gov.exhaustion gov with
  | Some r -> Printf.sprintf "governor: %s" (Degrade.reason_string r)
  | None -> "SAT budget exhausted in " ^ what

let check ?pool ?(max_depth = 20) ?(max_conflicts = 200_000) ?gov nl prop =
  ignore (Par.get pool);
  let gov = Gov.get gov in
  let name = Prop.name prop in
  let session = Session.create nl prop in
  let fallback () =
    (* last resort: exact reachability if tractable *)
    match Explicit.check nl prop with
    | Explicit.Proved { states } ->
        { property = name;
          verdict = Proved { method_ = Printf.sprintf "reachability(%d states)" states; depth = max_depth };
          checked_depth = max_depth }
    | Explicit.Falsified tr ->
        { property = name; verdict = Falsified tr; checked_depth = max_depth }
    | Explicit.Too_large ->
        { property = name;
          verdict = Unknown { reason = Printf.sprintf "no proof within k=%d" max_depth };
          checked_depth = max_depth }
  in
  (* governed degradation: the best bound fully checked is k - 1 *)
  let degraded ~reason k =
    { property = name;
      verdict = Unknown { reason };
      checked_depth = max 0 (k - 1) }
  in
  let run ~attempt:_ =
    let rec loop k =
      if k > max_depth then fallback ()
      else if Gov.out_of_budget gov then
        degraded ~reason:(out_reason gov ~what:"BMC") k
      else begin
        let hi = min max_depth (k + window_width - 1) in
        let window = List.init (hi - k + 1) (fun i -> k + i) in
        (* each bound gets its conflict share before the window runs —
           the same accounting as when bounds were fanned out, kept so
           finite-budget verdicts stay deterministic and width-free *)
        let shares = Gov.split ~label:"mc.window" gov (List.length window) in
        (* drive the shared session in ascending k; on the session the
           sequential decision IS the execution order *)
        let rec scan = function
          | [] -> loop (hi + 1)
          | (k, gk) :: rest -> (
              let base, induction =
                check_bound ~session ~max_conflicts ~gov:gk k
              in
              match base with
              | Session.Base_cex tr ->
                  { property = name; verdict = Falsified tr; checked_depth = k }
              | Session.Base_unknown ->
                  degraded ~reason:(out_reason gov ~what:"BMC") k
              | Session.Base_holds -> (
                  match induction with
                  | None -> scan rest  (* k = 0: nothing to induct on yet *)
                  | Some Session.Inductive ->
                      { property = name;
                        verdict = Proved { method_ = "k-induction"; depth = k };
                        checked_depth = k }
                  | Some (Session.Cti _) -> scan rest
                  | Some Session.Step_unknown ->
                      (* the base case at k DID hold: k is fully checked *)
                      { property = name;
                        verdict =
                          Unknown { reason = out_reason gov ~what:"induction" };
                        checked_depth = k }))
        in
        scan (List.combine window shares)
      end
    in
    let report = loop 0 in
    (match (report.verdict, Gov.exhaustion gov) with
    | Unknown _, Some reason ->
        Gov.note_degraded gov ~what:(Printf.sprintf "mc:%s" name) reason
    | _ -> ());
    report
  in
  (* retries reuse the session: closed bounds answer instantly and the
     clauses learned before exhaustion keep their value *)
  Gov.with_retry ~label:"mc" gov
    ~inconclusive:(fun r ->
      match r.verdict with Unknown _ -> true | Proved _ | Falsified _ -> false)
    run

let check_all ?pool ?max_depth ?max_conflicts ?gov nl props =
  (* per-property fan-out; each job replays the sequential engine over
     its own pre-split budget share (and its own session), so the report
     list is identical at any pool width *)
  let pool = Par.get pool in
  let gov = Gov.get gov in
  match props with
  | [] -> []
  | props ->
      let shares = Gov.split ~label:"mc.properties" gov (List.length props) in
      Par.map ~label:"mc.properties" pool
        (fun (p, g) -> check ?max_depth ?max_conflicts ~gov:g nl p)
        (List.combine props shares)

let all_proved reports =
  List.for_all
    (fun r -> match r.verdict with Proved _ -> true | _ -> false)
    reports

let pp_verdict fmt = function
  | Proved { method_; depth } -> Fmt.pf fmt "proved (%s, k=%d)" method_ depth
  | Falsified tr -> Fmt.pf fmt "FALSIFIED (%d-cycle trace)" (Trace.length tr)
  | Unknown { reason } -> Fmt.pf fmt "unknown (%s)" reason

let pp_report fmt r =
  Fmt.pf fmt "%-28s %a" r.property pp_verdict r.verdict
