(** Bounded model checking and k-induction over bit-blasted netlists.

    Thin drivers over {!Session}: each call opens one incremental
    session and walks bounds in ascending order, so learned clauses
    carry across bounds within the call.  Callers that pose many bounds
    or mix base and induction work should hold a {!Session.t}
    themselves (as {!Engine.check} does) to amortise across calls. *)

type check_result =
  | Holds  (** no counterexample up to the given depth *)
  | Counterexample of Trace.t
  | Resource_out
      (** resource budget exhausted: the SAT conflict allowance, the
          governor's deadline, or a cancellation.  Bounds below the one
          that ran out were fully checked — the caller knows the best
          bound reached. *)

val check :
  ?max_conflicts:int ->
  ?gov:Symbad_gov.Gov.t ->
  depth:int ->
  Symbad_hdl.Netlist.t ->
  Prop.t ->
  check_result
(** Search for a violation within [0, depth] steps from reset.  A step
    property at depth [k] spans states [k] and [k + 1].

    [gov] governs the run: it is polled before each bound and bounds the
    SAT search within each bound; exhaustion yields [Resource_out] at
    the next boundary.  [max_conflicts] is the historical per-call knob,
    kept as a deprecated alias. *)

type induction_result =
  | Inductive
  | Cti of Trace.t
      (** counterexample-to-induction: a [k]-step path over free states
          satisfying the property that then violates it — not
          necessarily reachable *)
  | Induction_resource_out  (** resource budget exhausted (see above) *)

val inductive_step :
  ?max_conflicts:int ->
  ?gov:Symbad_gov.Gov.t ->
  k:int ->
  Symbad_hdl.Netlist.t ->
  Prop.t ->
  induction_result
(** The inductive step at depth [k >= 1]: together with [check ~depth:k]
    returning [Holds], [Inductive] proves the property.  [gov] as in
    {!check}. *)
