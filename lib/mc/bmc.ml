(* Bounded model checking and k-induction over bit-blasted netlists.

   BMC at depth k: satisfiable "init /\ trans^k /\ not P@k" yields a
   concrete counterexample trace.  The inductive step at depth k:
   unsatisfiable "P@0..k-1 /\ trans^k /\ not P@k" over a free initial
   state proves P k-inductive; together with a clean BMC base case this
   proves the invariant.

   Both entry points are thin drivers over an incremental Session: one
   persistent solver, frames unrolled on demand, bounds posed through
   activation literals — learned clauses carry from bound to bound
   instead of re-bit-blasting the netlist per depth. *)

module Gov = Symbad_gov.Gov

type check_result =
  | Holds  (* no counterexample up to the given depth *)
  | Counterexample of Trace.t
  | Resource_out

(* Does "not P" hold at some depth in [0, depth]?  One session, bounds
   driven in ascending order. *)
let check ?(max_conflicts = max_int) ?gov ~depth nl prop =
  let session = Session.create nl prop in
  let gov_out () =
    match gov with Some g -> Gov.out_of_budget g | None -> false
  in
  let rec at k =
    if k > depth then Holds
    else if gov_out () then Resource_out
    else
      match Session.check_bound ~max_conflicts ?gov session k with
      | Session.Base_cex tr -> Counterexample tr
      | Session.Base_unknown -> Resource_out
      | Session.Base_holds -> at (k + 1)
  in
  at 0

type induction_result = Inductive | Cti of Trace.t | Induction_resource_out

(* The inductive step at depth [k] (k >= 1): from any state satisfying P
   for k consecutive steps, P holds at step k+1?  A satisfying assignment
   is a counterexample-to-induction (CTI), not necessarily reachable. *)
let inductive_step ?(max_conflicts = max_int) ?gov ~k nl prop =
  if k < 1 then invalid_arg "Bmc.inductive_step: k must be >= 1";
  if (match gov with Some g -> Gov.out_of_budget g | None -> false) then
    Induction_resource_out
  else
    let session = Session.create nl prop in
    match Session.induction ~max_conflicts ?gov session k with
    | Session.Inductive -> Inductive
    | Session.Cti tr -> Cti tr
    | Session.Step_unknown -> Induction_resource_out
