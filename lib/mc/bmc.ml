(* Bounded model checking and k-induction over bit-blasted netlists.

   BMC at depth k: satisfiable "init /\ trans^k /\ not P@k" yields a
   concrete counterexample trace.  The inductive step at depth k:
   unsatisfiable "P@0..k-1 /\ trans^k /\ not P@k" over a free initial
   state proves P k-inductive; together with a clean BMC base case this
   proves the invariant. *)

module Solver = Symbad_sat.Solver
module Hdl = Symbad_hdl
module Unroll = Symbad_hdl.Unroll
module Netlist = Symbad_hdl.Netlist
module Obs = Symbad_obs.Obs
module Json = Symbad_obs.Json

type check_result =
  | Holds  (* no counterexample up to the given depth *)
  | Counterexample of Trace.t
  | Resource_out

let extract_trace solver unroll upto nl =
  List.init (upto + 1) (fun i ->
      {
        Trace.inputs =
          List.map
            (fun (n, _) -> (n, Unroll.input_value solver unroll i n))
            (Netlist.inputs nl);
        regs =
          List.map
            (fun (r : Netlist.register) ->
              ( r.Netlist.name,
                Unroll.reg_value solver unroll i r.Netlist.name ))
            (Netlist.registers nl);
      })

(* Literal of the property instance anchored at frame [i]; a step
   property spans frames [i] and [i + 1] and needs one extra frame. *)
let prop_lit u prop i =
  if Prop.is_step prop then begin
    Unroll.unroll_to u (i + 2);
    Unroll.bool_lit_step u i (Prop.formula prop)
  end
  else Unroll.bool_lit u i (Prop.formula prop)

let trace_span prop k = if Prop.is_step prop then k + 1 else k

(* Does "not P" hold at some depth in [0, depth]?  Checks each depth with
   a fresh encoding (simple and predictable at case-study sizes). *)
let check ?(max_conflicts = max_int) ?gov ~depth nl prop =
  let prop = Prop.validate nl prop in
  let gov_out () =
    match gov with Some g -> Symbad_gov.Gov.out_of_budget g | None -> false
  in
  let rec at k =
    if k > depth then Holds
    else if gov_out () then Resource_out
    else begin
      (* one span per bound: the timeline shows where BMC effort goes *)
      Obs.span ~cat:"mc"
        ~args:
          [
            ("module", Json.Str (Netlist.name nl));
            ("property", Json.Str (Prop.name prop));
            ("bound", Json.Int k);
          ]
        "bmc.bound"
        (fun () ->
          let solver = Solver.create 0 in
          let u = Unroll.create ~init:Unroll.Reset solver nl in
          Unroll.unroll_to u (k + 1);
          Solver.add_clause solver [ -(prop_lit u prop k) ];
          match Solver.solve ~max_conflicts ?gov solver with
          | Solver.Sat ->
              `Stop
                (Counterexample (extract_trace solver u (trace_span prop k) nl))
          | Solver.Unsat -> `Next
          | Solver.Unknown -> `Stop Resource_out)
      |> function
      | `Stop r -> r
      | `Next -> at (k + 1)
    end
  in
  at 0

type induction_result = Inductive | Cti of Trace.t | Induction_resource_out

(* The inductive step at depth [k] (k >= 1): from any state satisfying P
   for k consecutive steps, P holds at step k+1?  A satisfying assignment
   is a counterexample-to-induction (CTI), not necessarily reachable. *)
let inductive_step ?(max_conflicts = max_int) ?gov ~k nl prop =
  if k < 1 then invalid_arg "Bmc.inductive_step: k must be >= 1";
  if (match gov with Some g -> Symbad_gov.Gov.out_of_budget g | None -> false)
  then Induction_resource_out
  else
  let prop = Prop.validate nl prop in
  Obs.span ~cat:"mc"
    ~args:
      [
        ("module", Json.Str (Netlist.name nl));
        ("property", Json.Str (Prop.name prop));
        ("k", Json.Int k);
      ]
    "bmc.induction"
    (fun () ->
      let solver = Solver.create 0 in
      let u = Unroll.create ~init:Unroll.Free solver nl in
      Unroll.unroll_to u (k + 1);
      for i = 0 to k - 1 do
        Solver.add_clause solver [ prop_lit u prop i ]
      done;
      Solver.add_clause solver [ -(prop_lit u prop k) ];
      match Solver.solve ~max_conflicts ?gov solver with
      | Solver.Unsat -> Inductive
      | Solver.Sat -> Cti (extract_trace solver u (trace_span prop k) nl)
      | Solver.Unknown -> Induction_resource_out)
