(** The level-4 model-checking engine: interleaves BMC (counterexample
    hunting) and k-induction (proof attempts) for increasing k, falling
    back to exact reachability when tractable.  Every property gets a
    proof certificate or a counterexample, as the flow requires.

    Incremental: [check] drives one {!Session} per property — a
    persistent solver pair — so bound k+1 reuses everything learned
    closing bounds 0..k.  Bounds advance in fixed-width windows purely
    for budget accounting (the governor's allowance is pre-split per
    bound, independent of the pool width); parallelism lives in
    [check_all ~pool], which fans out one job per property.  Reports
    are identical at any pool width. *)

val version : string
(** Engine version, embedded in content-addressed cache keys
    ({!Symbad_cache}); bumped on any change to the decision procedure,
    encodings or verdict semantics. *)

type verdict =
  | Proved of { method_ : string; depth : int }
      (** proof certificate: the method and the depth it closed at *)
  | Falsified of Trace.t  (** concrete counterexample trace *)
  | Unknown of { reason : string }
      (** no verdict within the resource budget; [checked_depth] in the
          report is the best bound fully explored — the partial result *)

type report = {
  property : string;  (** the property's name *)
  verdict : verdict;
  checked_depth : int;  (** deepest bound fully checked *)
}

val check :
  ?pool:Symbad_par.Par.pool ->
  ?max_depth:int ->
  ?max_conflicts:int ->
  ?gov:Symbad_gov.Gov.t ->
  Symbad_hdl.Netlist.t ->
  Prop.t ->
  report
(** Decide one property.  [gov] governs the whole run: its remaining
    conflict allowance is split deterministically across each parallel
    bound window, exhaustion degrades to [Unknown] carrying the best
    bound reached, and when the governor grants retries an [Unknown]
    run is re-dispatched under the remaining budget.  [max_conflicts]
    is the historical per-call knob, kept as a deprecated alias. *)

val check_all :
  ?pool:Symbad_par.Par.pool ->
  ?max_depth:int ->
  ?max_conflicts:int ->
  ?gov:Symbad_gov.Gov.t ->
  Symbad_hdl.Netlist.t ->
  Prop.t list ->
  report list
(** One job per property on [pool]; [gov]'s remaining budget is split
    across the properties before the fan-out, so reports are identical
    at any pool width. *)

val all_proved : report list -> bool
(** Did every property receive a proof certificate? *)

val pp_verdict : Format.formatter -> verdict -> unit
val pp_report : Format.formatter -> report -> unit
