(** The level-4 model-checking engine: interleaves BMC (counterexample
    hunting) and k-induction (proof attempts) for increasing k, falling
    back to exact reachability when tractable.  Every property gets a
    proof certificate or a counterexample, as the flow requires.

    [check ~pool] runs a bound portfolio (windows of [jobs pool] depths
    fanned out in parallel); [check_all ~pool] fans out one job per
    property.  Both replay the sequential decision order, so reports
    are identical at any pool width. *)

type verdict =
  | Proved of { method_ : string; depth : int }
  | Falsified of Trace.t
  | Unknown of { reason : string }

type report = { property : string; verdict : verdict; checked_depth : int }

val check :
  ?pool:Symbad_par.Par.pool ->
  ?max_depth:int ->
  ?max_conflicts:int ->
  Symbad_hdl.Netlist.t ->
  Prop.t ->
  report

val check_all :
  ?pool:Symbad_par.Par.pool ->
  ?max_depth:int ->
  ?max_conflicts:int ->
  Symbad_hdl.Netlist.t ->
  Prop.t list ->
  report list

val all_proved : report list -> bool

val pp_verdict : Format.formatter -> verdict -> unit
val pp_report : Format.formatter -> report -> unit
