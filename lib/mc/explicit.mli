(** Explicit-state reachability for small netlists.

    A decision procedure whenever the state and input spaces fit in
    memory; serves as the reference oracle for the SAT-based engines and
    answers reachability queries directly. *)

type result =
  | Proved of { states : int }  (** with the reachable-state count *)
  | Falsified of Trace.t  (** BFS gives a shortest counterexample *)
  | Too_large

val check :
  ?max_states:int ->
  ?max_input_bits:int ->
  ?max_evals:int ->
  Symbad_hdl.Netlist.t ->
  Prop.t ->
  result
(** [max_evals] (default [2{^22}]) bounds the total number of
    (state, input-valuation) transition evaluations: tractability is
    the product of the state and input spaces, and a design within both
    individual caps can still mean billions of expansions.  Exceeding
    any cap yields [Too_large]. *)

val reachable_states :
  ?max_states:int ->
  ?max_input_bits:int ->
  ?max_evals:int ->
  Symbad_hdl.Netlist.t ->
  int option
(** Reachable-state count, if tractable. *)
