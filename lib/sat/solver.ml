(* CDCL SAT solver (MiniSat architecture): two-watched-literal
   propagation, first-UIP clause learning, VSIDS-style activities with
   phase saving, and Luby restarts.  Literals are non-zero ints: [v] is
   the positive literal of variable [v >= 1], [-v] its negation. *)

type result = Sat | Unsat | Unknown

type clause = { mutable lits : int array; mutable active : bool }

type t = {
  mutable nvars : int;
  mutable clauses : clause array;
  mutable nclauses : int;
  (* watches.(lit_index l) = clause ids watching literal l *)
  mutable watches : int list array;
  (* value.(v) : 0 undef, 1 true, -1 false *)
  mutable value : int array;
  mutable level : int array;
  mutable reason : int array; (* clause id or -1 *)
  mutable activity : float array;
  mutable phase : bool array; (* saved polarity *)
  mutable trail : int array;
  mutable trail_size : int;
  mutable trail_lim : int array;
  mutable trail_lim_size : int;
  mutable qhead : int;
  mutable var_inc : float;
  mutable ok : bool; (* false once root-level conflict found *)
  mutable conflicts : int;
  mutable decisions : int;
  mutable propagations : int;
  mutable learned : int;
  mutable restarts : int;
  seen : (int, unit) Hashtbl.t;
}

let lit_index l = if l > 0 then 2 * l else (2 * -l) + 1

let create nvars =
  if nvars < 0 then invalid_arg "Solver.create: nvars";
  let n = nvars + 1 in
  {
    nvars;
    clauses = Array.make 16 { lits = [||]; active = false };
    nclauses = 0;
    watches = Array.make (2 * (n + 1)) [];
    value = Array.make n 0;
    level = Array.make n 0;
    reason = Array.make n (-1);
    activity = Array.make n 0.;
    phase = Array.make n false;
    trail = Array.make n 0;
    trail_size = 0;
    trail_lim = Array.make (n + 1) 0;
    trail_lim_size = 0;
    qhead = 0;
    var_inc = 1.;
    ok = true;
    conflicts = 0;
    decisions = 0;
    propagations = 0;
    learned = 0;
    restarts = 0;
    seen = Hashtbl.create 64;
  }

let nvars s = s.nvars

let new_var s =
  let v = s.nvars + 1 in
  s.nvars <- v;
  let ensure_var n =
    if n >= Array.length s.value then begin
      let cap = max (2 * Array.length s.value) (n + 1) in
      let grow a fill =
        let b = Array.make cap fill in
        Array.blit a 0 b 0 (Array.length a);
        b
      in
      s.value <- grow s.value 0;
      s.level <- grow s.level 0;
      s.reason <- grow s.reason (-1);
      s.activity <- grow s.activity 0.;
      s.phase <- grow s.phase false;
      s.trail <- grow s.trail 0;
      let tl = Array.make (cap + 1) 0 in
      Array.blit s.trail_lim 0 tl 0 (Array.length s.trail_lim);
      s.trail_lim <- tl
    end;
    if 2 * (n + 1) >= Array.length s.watches then begin
      let w = Array.make (max (2 * Array.length s.watches) (2 * (n + 2))) [] in
      Array.blit s.watches 0 w 0 (Array.length s.watches);
      s.watches <- w
    end
  in
  ensure_var v;
  v

let value_lit s l = if l > 0 then s.value.(l) else -s.value.(-l)

let decision_level s = s.trail_lim_size

let cancel_until s lvl =
  if decision_level s > lvl then begin
    let bound = s.trail_lim.(lvl) in
    for i = s.trail_size - 1 downto bound do
      let v = abs s.trail.(i) in
      s.value.(v) <- 0;
      s.reason.(v) <- -1
    done;
    s.trail_size <- bound;
    s.qhead <- bound;
    s.trail_lim_size <- lvl
  end

let enqueue s lit reason =
  let v = abs lit in
  s.value.(v) <- (if lit > 0 then 1 else -1);
  s.level.(v) <- decision_level s;
  s.reason.(v) <- reason;
  s.phase.(v) <- lit > 0;
  s.trail.(s.trail_size) <- lit;
  s.trail_size <- s.trail_size + 1

let push_clause s cl =
  if s.nclauses = Array.length s.clauses then begin
    let a = Array.make (2 * s.nclauses) cl in
    Array.blit s.clauses 0 a 0 s.nclauses;
    s.clauses <- a
  end;
  s.clauses.(s.nclauses) <- cl;
  s.nclauses <- s.nclauses + 1;
  s.nclauses - 1

let watch s lit cid =
  let i = lit_index lit in
  s.watches.(i) <- cid :: s.watches.(i)

(* Add a problem clause.  Simplifies out true/duplicate literals; detects
   tautologies.  Simplification against the assignment is only sound at
   decision level 0, so any leftover search state from a previous [solve]
   is backtracked first — this is what makes the incremental pattern
   (solve, add frame clauses, solve again) safe. *)
let add_clause s lits =
  cancel_until s 0;
  if s.ok then begin
    List.iter
      (fun l ->
        let v = abs l in
        if v = 0 || v > s.nvars then
          invalid_arg (Printf.sprintf "Solver.add_clause: bad literal %d" l))
      lits;
    let lits = List.sort_uniq compare lits in
    let tautology =
      List.exists (fun l -> List.mem (-l) lits) lits
      || List.exists (fun l -> value_lit s l = 1) lits
    in
    if not tautology then begin
      let lits = List.filter (fun l -> value_lit s l <> -1) lits in
      match lits with
      | [] -> s.ok <- false
      | [ l ] -> enqueue s l (-1)
      | l0 :: l1 :: _ ->
          let cl = { lits = Array.of_list lits; active = true } in
          let cid = push_clause s cl in
          watch s l0 cid;
          watch s l1 cid
    end
  end

exception Conflict of int

(* Two-watched-literal unit propagation.  Returns the id of a conflicting
   clause, or -1. *)
let propagate s =
  try
    while s.qhead < s.trail_size do
      let p = s.trail.(s.qhead) in
      s.qhead <- s.qhead + 1;
      s.propagations <- s.propagations + 1;
      let falsified = -p in
      let idx = lit_index falsified in
      let ws = s.watches.(idx) in
      s.watches.(idx) <- [];
      let rec go = function
        | [] -> ()
        | cid :: rest ->
            let cl = s.clauses.(cid) in
            let lits = cl.lits in
            (* ensure falsified watch is at position 1 *)
            if lits.(0) = falsified then begin
              lits.(0) <- lits.(1);
              lits.(1) <- falsified
            end;
            if value_lit s lits.(0) = 1 then begin
              (* clause satisfied; keep watching *)
              s.watches.(idx) <- cid :: s.watches.(idx);
              go rest
            end
            else begin
              (* look for a new watch *)
              let n = Array.length lits in
              let rec find k =
                if k >= n then -1
                else if value_lit s lits.(k) <> -1 then k
                else find (k + 1)
              in
              let k = find 2 in
              if k >= 0 then begin
                let tmp = lits.(1) in
                lits.(1) <- lits.(k);
                lits.(k) <- tmp;
                watch s lits.(1) cid;
                go rest
              end
              else begin
                (* unit or conflicting *)
                s.watches.(idx) <- cid :: s.watches.(idx);
                if value_lit s lits.(0) = -1 then begin
                  (* conflict: restore remaining watches and abort *)
                  List.iter
                    (fun c -> s.watches.(idx) <- c :: s.watches.(idx))
                    rest;
                  raise (Conflict cid)
                end
                else begin
                  enqueue s lits.(0) cid;
                  go rest
                end
              end
            end
      in
      go ws
    done;
    -1
  with Conflict cid -> cid

let var_bump s v =
  s.activity.(v) <- s.activity.(v) +. s.var_inc;
  if s.activity.(v) > 1e100 then begin
    for i = 1 to s.nvars do
      s.activity.(i) <- s.activity.(i) *. 1e-100
    done;
    s.var_inc <- s.var_inc *. 1e-100
  end

let var_decay s = s.var_inc <- s.var_inc /. 0.95

(* First-UIP conflict analysis.  Returns (learned clause, backjump level);
   learned.(0) is the asserting literal. *)
let analyze s conflict_cid =
  Hashtbl.reset s.seen;
  let learned = ref [] in
  let counter = ref 0 in
  let p = ref 0 in
  (* 0 = start with whole conflict clause *)
  let cid = ref conflict_cid in
  let trail_pos = ref (s.trail_size - 1) in
  let asserting = ref 0 in
  let continue_loop = ref true in
  while !continue_loop do
    let cl = s.clauses.(!cid) in
    Array.iter
      (fun q ->
        if q <> !p then begin
          let v = abs q in
          if (not (Hashtbl.mem s.seen v)) && s.level.(v) > 0 then begin
            Hashtbl.add s.seen v ();
            var_bump s v;
            if s.level.(v) >= decision_level s then incr counter
            else learned := q :: !learned
          end
        end)
      cl.lits;
    (* pick next literal to expand from the trail *)
    let rec next_seen i =
      let v = abs s.trail.(i) in
      if Hashtbl.mem s.seen v then i else next_seen (i - 1)
    in
    let i = next_seen !trail_pos in
    trail_pos := i - 1;
    let lit = s.trail.(i) in
    let v = abs lit in
    Hashtbl.remove s.seen v;
    decr counter;
    if !counter = 0 then begin
      asserting := -lit;
      continue_loop := false
    end
    else begin
      (* expand v's reason clause; skip the propagated literal itself *)
      p := lit;
      cid := s.reason.(v)
    end
  done;
  let learned = !asserting :: !learned in
  let backjump =
    match learned with
    | [ _ ] -> 0
    | _ :: rest ->
        List.fold_left (fun acc l -> max acc s.level.(abs l)) 0 rest
    | [] -> 0
  in
  (Array.of_list learned, backjump)

let record_learned s lits =
  s.learned <- s.learned + 1;
  if Array.length lits = 1 then enqueue s lits.(0) (-1)
  else begin
    (* watch the asserting literal and a highest-level literal *)
    let best = ref 1 in
    for i = 2 to Array.length lits - 1 do
      if s.level.(abs lits.(i)) > s.level.(abs lits.(!best)) then best := i
    done;
    let tmp = lits.(1) in
    lits.(1) <- lits.(!best);
    lits.(!best) <- tmp;
    let cl = { lits; active = true } in
    let cid = push_clause s cl in
    watch s lits.(0) cid;
    watch s lits.(1) cid;
    enqueue s lits.(0) cid
  end

let pick_branch_var s =
  let best = ref 0 and best_act = ref neg_infinity in
  for v = 1 to s.nvars do
    if s.value.(v) = 0 && s.activity.(v) > !best_act then begin
      best := v;
      best_act := s.activity.(v)
    end
  done;
  !best

(* Luby restart sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ... *)
let rec luby i =
  let rec find k = if (1 lsl k) - 1 >= i then k else find (k + 1) in
  let k = find 1 in
  if (1 lsl k) - 1 = i then 1 lsl (k - 1)
  else luby (i - (1 lsl (k - 1)) + 1)

let solve_search ?(assumptions = []) ?(max_conflicts = max_int) ?gov s =
  (* the governor's conflict allowance combines with the historical
     per-call knob (smaller wins); deadline/cancellation are polled at
     every conflict — conflicts are heavy enough that one clock read is
     noise *)
  let max_conflicts =
    match Option.bind gov Symbad_gov.Gov.conflicts_left with
    | Some left -> min max_conflicts left
    | None -> max_conflicts
  in
  let gov_out () =
    match gov with Some g -> Symbad_gov.Gov.out_of_budget g | None -> false
  in
  if gov_out () then Unknown
  else if not s.ok then Unsat
  else begin
    cancel_until s 0;
    let conflict0 = propagate s in
    if conflict0 >= 0 then begin
      s.ok <- false;
      Unsat
    end
    else begin
      let restart_count = ref 0 in
      let result = ref None in
      let budget () = s.conflicts in
      let start_conflicts = budget () in
      let conflicts_until_restart () = 100 * luby (!restart_count + 1) in
      let restart_limit = ref (conflicts_until_restart ()) in
      let conflicts_this_restart = ref 0 in
      (* assumption handling: assume in order at successive levels *)
      let rec search () =
        match !result with
        | Some _ -> ()
        | None ->
            let cid = propagate s in
            if cid >= 0 then begin
              s.conflicts <- s.conflicts + 1;
              incr conflicts_this_restart;
              if decision_level s <= List.length assumptions then begin
                (* conflict under assumptions only: unsat *)
                if decision_level s = 0 then s.ok <- false;
                result := Some Unsat
              end
              else begin
                let learned, backjump = analyze s cid in
                let backjump = max backjump (List.length assumptions) in
                cancel_until s backjump;
                record_learned s learned;
                var_decay s;
                if budget () - start_conflicts >= max_conflicts || gov_out ()
                then result := Some Unknown
                else if !conflicts_this_restart >= !restart_limit then begin
                  incr restart_count;
                  s.restarts <- s.restarts + 1;
                  conflicts_this_restart := 0;
                  restart_limit := conflicts_until_restart ();
                  cancel_until s (List.length assumptions)
                end;
                search ()
              end
            end
            else begin
              (* decision *)
              let lvl = decision_level s in
              if lvl < List.length assumptions then begin
                let a = List.nth assumptions lvl in
                match value_lit s a with
                | 1 ->
                    (* already true: open an empty level to keep indices aligned *)
                    s.trail_lim.(s.trail_lim_size) <- s.trail_size;
                    s.trail_lim_size <- s.trail_lim_size + 1;
                    search ()
                | -1 -> result := Some Unsat
                | _ ->
                    s.trail_lim.(s.trail_lim_size) <- s.trail_size;
                    s.trail_lim_size <- s.trail_lim_size + 1;
                    enqueue s a (-1);
                    search ()
              end
              else begin
                let v = pick_branch_var s in
                if v = 0 then result := Some Sat
                else begin
                  s.decisions <- s.decisions + 1;
                  s.trail_lim.(s.trail_lim_size) <- s.trail_size;
                  s.trail_lim_size <- s.trail_lim_size + 1;
                  let lit = if s.phase.(v) then v else -v in
                  enqueue s lit (-1);
                  search ()
                end
              end
            end
      in
      search ();
      match !result with Some r -> r | None -> assert false
    end
  end

let result_string = function Sat -> "sat" | Unsat -> "unsat" | Unknown -> "unknown"

(* Telemetry shell around the search: a span per [solve] call and the
   effort deltas (conflicts, propagations, restarts, ...) flushed to the
   metrics registry once the call returns.  The governor is charged the
   conflicts spent on every exit path, including exceptional ones. *)
let solve ?assumptions ?max_conflicts ?gov s =
  let module Obs = Symbad_obs.Obs in
  let module Json = Symbad_obs.Json in
  let c_start = s.conflicts in
  let settle () =
    match gov with
    | Some g -> Symbad_gov.Gov.charge_conflicts g (s.conflicts - c_start)
    | None -> ()
  in
  let solve_search ?assumptions ?max_conflicts ?gov s =
    match solve_search ?assumptions ?max_conflicts ?gov s with
    | r ->
        settle ();
        r
    | exception e ->
        settle ();
        raise e
  in
  if not (Obs.enabled ()) then solve_search ?assumptions ?max_conflicts ?gov s
  else begin
    let c0 = s.conflicts
    and p0 = s.propagations
    and d0 = s.decisions
    and r0 = s.restarts in
    let sp =
      Obs.begin_span ~cat:"sat"
        ~args:[ ("vars", Json.Int s.nvars); ("clauses", Json.Int s.nclauses) ]
        "sat.solve"
    in
    let finish result =
      (* through the facade: a solve inside a Par job flushes into the
         job's buffer, not the (foreign) global registry *)
      let flush name v = Obs.incr_counter ~by:v name in
      flush "sat.solves" 1;
      flush "sat.conflicts" (s.conflicts - c0);
      flush "sat.propagations" (s.propagations - p0);
      flush "sat.decisions" (s.decisions - d0);
      flush "sat.restarts" (s.restarts - r0);
      Obs.end_span
        ~args:
          [
            ("result", Json.Str (match result with
              | Some r -> result_string r
              | None -> "exception"));
            ("conflicts", Json.Int (s.conflicts - c0));
          ]
        sp
    in
    match solve_search ?assumptions ?max_conflicts ?gov s with
    | r ->
        finish (Some r);
        r
    | exception e ->
        finish None;
        raise e
  end

(* Model access: only meaningful right after [solve] returned [Sat]. *)
let model_value s v =
  if v < 1 || v > s.nvars then invalid_arg "Solver.model_value";
  s.value.(v) = 1

let model s = Array.init (s.nvars + 1) (fun v -> v >= 1 && s.value.(v) = 1)

type stats = {
  conflicts : int;
  decisions : int;
  propagations : int;
  learned : int;
  restarts : int;
}

let stats (s : t) =
  {
    conflicts = s.conflicts;
    decisions = s.decisions;
    propagations = s.propagations;
    learned = s.learned;
    restarts = s.restarts;
  }

type outcome = { result : result; spent : stats }

(* The stats-carrying entry point: same search, but the effort this call
   spent (not the solver lifetime totals) comes back with the result, so
   callers can account for budget without diffing [stats] themselves. *)
let solve_outcome ?assumptions ?max_conflicts ?gov s =
  let before = stats s in
  let result = solve ?assumptions ?max_conflicts ?gov s in
  let after = stats s in
  {
    result;
    spent =
      {
        conflicts = after.conflicts - before.conflicts;
        decisions = after.decisions - before.decisions;
        propagations = after.propagations - before.propagations;
        learned = after.learned - before.learned;
        restarts = after.restarts - before.restarts;
      };
  }
