(** CDCL SAT solver.

    MiniSat architecture: two-watched-literal propagation, first-UIP
    learning, activity-based decisions with phase saving, Luby restarts.
    Literals are non-zero ints: [v] is variable [v >= 1] positive, [-v]
    its negation. *)

type t

type result = Sat | Unsat | Unknown
(** [Unknown]: resource budget exhausted — the conflict allowance, the
    governor's wall-clock deadline, or a cancellation (see
    {!Symbad_gov.Gov}). *)

val create : int -> t
(** [create n] is a solver over variables [1..n]. *)

val nvars : t -> int

val new_var : t -> int
(** Allocate and return a fresh variable. *)

val add_clause : t -> int list -> unit
(** Add a clause.  Tautologies and satisfied clauses are dropped; the
    empty clause makes the instance permanently unsatisfiable.

    Safe to call between [solve] calls: any search state left by the
    previous call is backtracked to the root level first, so incremental
    callers may interleave solving and clause addition freely.

    {b Activation-literal convention} (the incremental-query idiom used
    by {!Symbad_mc.Session}): to pose a retractable query [Q], allocate a
    fresh variable [a] with {!new_var}, add [Q] guarded as
    [add_clause s [-a; q]] for each clause [q] of [Q], and solve with
    [~assumptions:[a]].  While [a] is not assumed the guarded clauses are
    vacuously satisfiable, so they never pollute later queries; to retire
    the query permanently, add the unit clause [[-a]].  Because [a] is
    fresh and occurs in no other clause, an [Unsat] answer under
    [~assumptions:[a]] proves the unguarded [Q] is unsatisfiable with the
    rest of the CNF. *)

val solve :
  ?assumptions:int list ->
  ?max_conflicts:int ->
  ?gov:Symbad_gov.Gov.t ->
  t ->
  result
(** Decide satisfiability under the given assumption literals.

    [gov] bounds the search: its conflict allowance caps this call (in
    combination with [max_conflicts], the smaller wins), its deadline
    and cancel token are polled at every conflict, and the conflicts
    actually spent are charged back to it on return.  An exhausted
    governor yields [Unknown] immediately.

    [max_conflicts] is the historical per-call budget knob, kept as a
    deprecated alias — new callers should pass a governor instead.

    {b Deprecated alias:} this bare-[result] form charges the governor
    silently and discards the effort figures; new callers should use
    {!solve_outcome}, which returns the same result together with the
    per-call spend. *)

val model_value : t -> int -> bool
(** Value of a variable in the model; meaningful only right after [solve]
    returned [Sat]. *)

val model : t -> bool array
(** Full model, indexed by variable (index 0 unused). *)

type stats = {
  conflicts : int;
  decisions : int;
  propagations : int;
  learned : int;
  restarts : int;
}

val stats : t -> stats
(** Lifetime totals for the solver instance. *)

type outcome = { result : result; spent : stats }
(** A solve result together with the effort {e this call} spent —
    [spent] carries deltas, not lifetime totals. *)

val solve_outcome :
  ?assumptions:int list ->
  ?max_conflicts:int ->
  ?gov:Symbad_gov.Gov.t ->
  t ->
  outcome
(** Like {!solve}, but the conflicts/decisions/propagations/restarts the
    call consumed come back alongside the result instead of having to be
    recovered by diffing {!stats} around the call.  The governor (when
    given) is still charged [spent.conflicts] on every exit path, exactly
    as {!solve} does. *)
