(** CDCL SAT solver.

    MiniSat architecture: two-watched-literal propagation, first-UIP
    learning, activity-based decisions with phase saving, Luby restarts.
    Literals are non-zero ints: [v] is variable [v >= 1] positive, [-v]
    its negation. *)

type t

type result = Sat | Unsat | Unknown  (** [Unknown]: conflict budget hit *)

val create : int -> t
(** [create n] is a solver over variables [1..n]. *)

val nvars : t -> int

val new_var : t -> int
(** Allocate and return a fresh variable. *)

val add_clause : t -> int list -> unit
(** Add a clause (only before or between [solve] calls, at root level).
    Tautologies and satisfied clauses are dropped; the empty clause makes
    the instance permanently unsatisfiable. *)

val solve : ?assumptions:int list -> ?max_conflicts:int -> t -> result
(** Decide satisfiability under the given assumption literals. *)

val model_value : t -> int -> bool
(** Value of a variable in the model; meaningful only right after [solve]
    returned [Sat]. *)

val model : t -> bool array
(** Full model, indexed by variable (index 0 unused). *)

type stats = {
  conflicts : int;
  decisions : int;
  propagations : int;
  learned : int;
  restarts : int;
}

val stats : t -> stats
