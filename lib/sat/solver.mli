(** CDCL SAT solver.

    MiniSat architecture: two-watched-literal propagation, first-UIP
    learning, activity-based decisions with phase saving, Luby restarts.
    Literals are non-zero ints: [v] is variable [v >= 1] positive, [-v]
    its negation. *)

type t

type result = Sat | Unsat | Unknown
(** [Unknown]: resource budget exhausted — the conflict allowance, the
    governor's wall-clock deadline, or a cancellation (see
    {!Symbad_gov.Gov}). *)

val create : int -> t
(** [create n] is a solver over variables [1..n]. *)

val nvars : t -> int

val new_var : t -> int
(** Allocate and return a fresh variable. *)

val add_clause : t -> int list -> unit
(** Add a clause (only before or between [solve] calls, at root level).
    Tautologies and satisfied clauses are dropped; the empty clause makes
    the instance permanently unsatisfiable. *)

val solve :
  ?assumptions:int list ->
  ?max_conflicts:int ->
  ?gov:Symbad_gov.Gov.t ->
  t ->
  result
(** Decide satisfiability under the given assumption literals.

    [gov] bounds the search: its conflict allowance caps this call (in
    combination with [max_conflicts], the smaller wins), its deadline
    and cancel token are polled at every conflict, and the conflicts
    actually spent are charged back to it on return.  An exhausted
    governor yields [Unknown] immediately.

    [max_conflicts] is the historical per-call budget knob, kept as a
    deprecated alias — new callers should pass a governor instead. *)

val model_value : t -> int -> bool
(** Value of a variable in the model; meaningful only right after [solve]
    returned [Sat]. *)

val model : t -> bool array
(** Full model, indexed by variable (index 0 unused). *)

type stats = {
  conflicts : int;
  decisions : int;
  propagations : int;
  learned : int;
  restarts : int;
}

val stats : t -> stats
