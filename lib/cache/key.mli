(** Content-addressed cache keys: MD5 over a canonical text rendering of
    the netlist, the properties, the budget class, the engine version
    and the numeric engine parameters.  Any edit to any of them changes
    the key. *)

val budget_class : Symbad_gov.Budget.t -> string
(** The budget's cache-relevant class: conflict/pattern allowances and
    the retry count, plus a flag for deadline presence.  The deadline
    {e instant} never enters a key (it is wall-clock state). *)

val make :
  netlist:Symbad_hdl.Netlist.t ->
  props:Symbad_mc.Prop.t list ->
  budget:Symbad_gov.Budget.t ->
  params:(string * int) list ->
  unit ->
  string
(** The key, as 32 lowercase hex characters.  [params] carries the
    numeric engine knobs (e.g. [max_depth], [pcc_depth]) in a fixed
    caller-chosen order. *)
