(* The verdict store: one JSON file per key under a cache directory.

   Lookups and stores are content-addressed ({!Key}), so there is no
   invalidation protocol — an edited netlist or property simply hashes
   to a different key and misses.  Writes go through a temp file and a
   rename, so a torn write can never produce a half-parseable entry; a
   corrupt or unreadable entry reads as a miss.

   Telemetry: every lookup bumps the [cache.hits] or [cache.misses]
   counter (and each write [cache.stores]) through the Obs facade, and
   the same tallies are kept per handle for reports that run with
   telemetry off. *)

module Obs = Symbad_obs.Obs
module Json = Symbad_obs.Json

type t = {
  dir : string;
  mutable hits : int;
  mutable misses : int;
  mutable stores : int;
}

let env_var = "SYMBAD_CACHE_DIR"

let default_dir () =
  match Sys.getenv_opt env_var with
  | Some d when d <> "" -> d
  | _ -> "_symbad_cache"

let create ?dir () =
  let dir = match dir with Some d -> d | None -> default_dir () in
  { dir; hits = 0; misses = 0; stores = 0 }

let dir t = t.dir
let hits t = t.hits
let misses t = t.misses
let stores t = t.stores

let path t key = Filename.concat t.dir (key ^ ".json")

let count t ~hit =
  if hit then begin
    t.hits <- t.hits + 1;
    if Obs.enabled () then Obs.incr_counter "cache.hits"
  end
  else begin
    t.misses <- t.misses + 1;
    if Obs.enabled () then Obs.incr_counter "cache.misses"
  end

let read_file p =
  try
    let ic = open_in_bin p in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Some (really_input_string ic (in_channel_length ic)))
  with Sys_error _ | End_of_file -> None

let find t key =
  let entry =
    match read_file (path t key) with
    | None -> None
    | Some s -> ( match Json.parse s with Ok j -> Some j | Error _ -> None)
  in
  count t ~hit:(entry <> None);
  entry

let ensure_dir d =
  if not (Sys.file_exists d) then
    try Sys.mkdir d 0o755 with Sys_error _ -> ()

let store t key json =
  ensure_dir t.dir;
  let final = path t key in
  (* concurrent writers race benignly: both write the same content and
     rename is atomic, so the entry is always a complete document *)
  let tmp = final ^ ".tmp" in
  (try
     let oc = open_out_bin tmp in
     Fun.protect
       ~finally:(fun () -> close_out_noerr oc)
       (fun () ->
         output_string oc (Json.to_string json);
         output_char oc '\n');
     Sys.rename tmp final;
     t.stores <- t.stores + 1;
     if Obs.enabled () then Obs.incr_counter "cache.stores"
   with Sys_error _ -> (try Sys.remove tmp with Sys_error _ -> ()))
