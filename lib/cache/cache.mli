(** The content-addressed verdict store: one JSON document per {!Key}
    under a cache directory.

    No invalidation protocol exists or is needed — an edited netlist,
    property, budget or engine version hashes to a different key and
    misses.  Corrupt or unreadable entries read as misses; writes are
    atomic (temp file + rename).

    Every lookup bumps [cache.hits] / [cache.misses] (and each write
    [cache.stores]) on the {!Symbad_obs.Obs} facade, and the same
    tallies are kept on the handle. *)

type t

val env_var : string
(** ["SYMBAD_CACHE_DIR"] — overrides the default directory. *)

val default_dir : unit -> string
(** [$SYMBAD_CACHE_DIR] if set and non-empty, else ["_symbad_cache"]
    (relative to the working directory). *)

val create : ?dir:string -> unit -> t
(** A handle on [dir] (default {!default_dir}).  Nothing touches the
    filesystem until the first {!store}. *)

val dir : t -> string

val find : t -> string -> Symbad_obs.Json.t option
(** Look a key up; [None] (a miss) on absent, unreadable or unparseable
    entries. *)

val store : t -> string -> Symbad_obs.Json.t -> unit
(** Write an entry.  Filesystem errors are swallowed — a cache that
    cannot persist degrades to a miss on the next run, never to a
    failure of the verification itself. *)

val hits : t -> int
val misses : t -> int
val stores : t -> int
