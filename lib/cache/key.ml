(* Content-addressed cache keys.

   A key is the MD5 of a canonical text rendering of everything the
   verdict depends on: the netlist (structure, widths, reset values),
   the properties, the budget class, the engine version and the
   numeric engine parameters.  Editing any of these — renaming a
   register, widening a port, changing a property formula, granting a
   different conflict allowance — changes the key, so a stale verdict
   can never be replayed against different work.

   The rendering is explicit rather than [Marshal]-based so the key is
   stable across compiler versions and insensitive to sharing. *)

module Netlist = Symbad_hdl.Netlist
module Expr = Symbad_hdl.Expr
module Bitvec = Symbad_hdl.Bitvec
module Prop = Symbad_mc.Prop
module Budget = Symbad_gov.Budget

let add_bitvec buf v =
  Buffer.add_string buf
    (Printf.sprintf "%d'%d" (Bitvec.width v) (Bitvec.to_int v))

let rec add_expr buf (e : Expr.t) =
  let str = Buffer.add_string buf in
  match e with
  | Expr.Const v ->
      str "C(";
      add_bitvec buf v;
      str ")"
  | Expr.Input n -> str (Printf.sprintf "I(%s)" n)
  | Expr.Reg n -> str (Printf.sprintf "R(%s)" n)
  | Expr.Unop (op, a) ->
      str (match op with Expr.Not -> "not(" | Expr.Neg -> "neg(");
      add_expr buf a;
      str ")"
  | Expr.Binop (op, a, b) ->
      str (Expr.binop_to_string op);
      str "(";
      add_expr buf a;
      str ",";
      add_expr buf b;
      str ")"
  | Expr.Mux (s, t, f) ->
      str "mux(";
      add_expr buf s;
      str ",";
      add_expr buf t;
      str ",";
      add_expr buf f;
      str ")"
  | Expr.Slice (a, hi, lo) ->
      str (Printf.sprintf "slice[%d:%d](" hi lo);
      add_expr buf a;
      str ")"
  | Expr.Concat (hi, lo) ->
      str "concat(";
      add_expr buf hi;
      str ",";
      add_expr buf lo;
      str ")"

let add_netlist buf nl =
  Buffer.add_string buf (Printf.sprintf "netlist:%s\n" (Netlist.name nl));
  List.iter
    (fun (n, w) -> Buffer.add_string buf (Printf.sprintf "in:%s:%d\n" n w))
    (Netlist.inputs nl);
  List.iter
    (fun (r : Netlist.register) ->
      Buffer.add_string buf
        (Printf.sprintf "reg:%s:%d:init=" r.Netlist.name r.Netlist.width);
      add_bitvec buf r.Netlist.init;
      Buffer.add_string buf ":next=";
      add_expr buf r.Netlist.next;
      Buffer.add_char buf '\n')
    (Netlist.registers nl);
  List.iter
    (fun (n, e) ->
      Buffer.add_string buf (Printf.sprintf "out:%s=" n);
      add_expr buf e;
      Buffer.add_char buf '\n')
    (Netlist.outputs nl)

let add_prop buf p =
  Buffer.add_string buf
    (Printf.sprintf "prop:%s:%s=" (Prop.name p)
       (if Prop.is_step p then "step" else "inv"));
  add_expr buf (Prop.formula p);
  Buffer.add_char buf '\n'

(* The budget class: which logical allowances bound the run.  Only the
   deterministic currencies and the retry count enter the key — the
   deadline is a wall-clock cutoff whose effect is not reproducible, so
   its mere presence poisons cachability upstream (see {!Cache}); here
   it is recorded as a flag for completeness. *)
let budget_class (b : Budget.t) =
  let axis name = function None -> name ^ "=inf" | Some n -> Printf.sprintf "%s=%d" name n in
  String.concat ";"
    [
      axis "conflicts" b.Budget.conflicts;
      axis "patterns" b.Budget.patterns;
      Printf.sprintf "retries=%d" b.Budget.retries;
      Printf.sprintf "deadline=%b" (b.Budget.deadline <> None);
    ]

let make ~netlist ~props ~budget ~params () =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf ("engine:" ^ Symbad_mc.Engine.version ^ "\n");
  add_netlist buf netlist;
  List.iter (add_prop buf) props;
  Buffer.add_string buf ("budget:" ^ budget_class budget ^ "\n");
  List.iter
    (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "param:%s=%d\n" k v))
    params;
  Digest.to_hex (Digest.string (Buffer.contents buf))
