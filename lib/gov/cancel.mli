(** Cooperative cancellation tokens.

    A token is a domain-safe flag that a controller raises and engines
    poll at step boundaries (between SAT conflicts, BMC bounds, ATPG
    generations, PCC faults).  Cancellation is cooperative: raising the
    flag never interrupts a step in flight, it makes the next boundary
    check degrade the run. *)

type t

val create : unit -> t
(** A fresh, uncancelled token. *)

val cancel : t -> unit
(** Raise the flag.  Idempotent; safe from any domain.  No-op on
    {!none}. *)

val is_cancelled : t -> bool
(** Poll the flag.  Safe and cheap (one atomic read) from any domain. *)

val none : t
(** The shared never-cancelled token — what call sites use when no
    controller is interested in stopping them.  [cancel none] is
    ignored. *)
