(** The graceful-degradation policy: what an engine reports when its
    budget runs out.

    Exhaustion never raises and never hangs — the engine stops at the
    next step boundary and reports the partial result it achieved (the
    best bound reached in BMC, the coverage attained in ATPG, the faults
    classified in PCC) as an inconclusive outcome.  This module is the
    vocabulary of that contract: the exhaustion reasons and the
    one-line detail string the uniform verdict carries. *)

type reason =
  | Cancelled  (** the {!Cancel} token was raised *)
  | Deadline  (** the wall-clock deadline passed *)
  | Conflicts  (** the SAT-conflict allowance is spent *)
  | Patterns  (** the test-pattern / simulation-unit allowance is spent *)

val reason_string : reason -> string
(** ["cancelled"], ["deadline exhausted"], ["conflict budget exhausted"]
    or ["pattern budget exhausted"] — stable strings, safe to embed in
    byte-compared reports (no timestamps). *)

type partial = {
  units_done : int;  (** steps completed before exhaustion *)
  units_total : int option;  (** steps planned, when known up front *)
  what : string;  (** the unit, e.g. ["faults classified"] *)
}

val detail : reason:reason -> partial -> string
(** The human-readable line an [Inconclusive] verdict carries, e.g.
    ["governor: deadline exhausted; 3/17 faults classified"].
    Deterministic — contains no wall-clock quantities. *)
