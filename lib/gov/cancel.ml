(* Cooperative cancellation: one atomic flag, raised by a controller,
   polled by engines at step boundaries.  [none] is the shared inert
   token; cancelling it is refused so a library that was handed [none]
   can never cancel everybody else's default. *)

type t = { flag : bool Atomic.t; cancellable : bool }

let create () = { flag = Atomic.make false; cancellable = true }
let cancel t = if t.cancellable then Atomic.set t.flag true
let is_cancelled t = Atomic.get t.flag
let none = { flag = Atomic.make false; cancellable = false }
