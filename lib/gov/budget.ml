(* Resource budgets: the immutable description of what a verification
   run may consume.  Spend accounting lives in Gov; this module is pure
   arithmetic over the four axes (deadline, conflicts, patterns, memory
   hint) plus the retry count.

   Invariant kept by every constructor: logical allowances are >= 0, so
   "Some 0" uniformly means "exhausted" and None means "unlimited". *)

module Json = Symbad_obs.Json

type t = {
  deadline : float option;
  conflicts : int option;
  patterns : int option;
  memory_mb : int option;
  retries : int;
}

let unlimited =
  { deadline = None; conflicts = None; patterns = None; memory_mb = None;
    retries = 0 }

let clamp = Option.map (fun n -> max 0 n)

let make ?deadline_s ?conflicts ?patterns ?memory_mb ?(retries = 0) () =
  {
    deadline = Option.map (fun s -> Unix.gettimeofday () +. s) deadline_s;
    conflicts = clamp conflicts;
    patterns = clamp patterns;
    memory_mb = clamp memory_mb;
    retries = max 0 retries;
  }

let is_unlimited t =
  t.deadline = None && t.conflicts = None && t.patterns = None

let remaining_s t = Option.map (fun d -> d -. Unix.gettimeofday ()) t.deadline

let deadline_over t =
  match t.deadline with None -> false | Some d -> Unix.gettimeofday () >= d

(* Near-equal integer shares: the first [total mod n] shares get one
   extra unit, so the shares sum exactly to the allowance. *)
let share ~n ~i = function
  | None -> None
  | Some total -> Some ((total / n) + (if i < total mod n then 1 else 0))

let split ~n t =
  if n < 1 then invalid_arg "Budget.split: n must be >= 1";
  List.init n (fun i ->
      { t with
        conflicts = share ~n ~i t.conflicts;
        patterns = share ~n ~i t.patterns })

let slice ~fraction t =
  let f = Float.max 0. (Float.min 1. fraction) in
  let scale = Option.map (fun a -> int_of_float (float_of_int a *. f)) in
  {
    t with
    deadline =
      Option.map
        (fun d ->
          let now = Unix.gettimeofday () in
          now +. (Float.max 0. (d -. now) *. f))
        t.deadline;
    conflicts = scale t.conflicts;
    patterns = scale t.patterns;
  }

let pp fmt t =
  let axis name pp_v fmt = function
    | None -> Fmt.pf fmt "%s=inf" name
    | Some v -> Fmt.pf fmt "%s=%a" name pp_v v
  in
  Fmt.pf fmt "{%a %a %a %a retries=%d}"
    (axis "deadline_s" (fun fmt d -> Fmt.pf fmt "%+.3f" (d -. Unix.gettimeofday ())))
    t.deadline
    (axis "conflicts" Fmt.int) t.conflicts
    (axis "patterns" Fmt.int) t.patterns
    (axis "memory_mb" Fmt.int) t.memory_mb
    t.retries

let to_json t =
  let opt f = function None -> Json.Null | Some v -> f v in
  Json.Obj
    [
      ("deadline_s_left", opt (fun s -> Json.Float s) (remaining_s t));
      ("conflicts", opt (fun n -> Json.Int n) t.conflicts);
      ("patterns", opt (fun n -> Json.Int n) t.patterns);
      ("memory_mb", opt (fun n -> Json.Int n) t.memory_mb);
      ("retries", Json.Int t.retries);
    ]
