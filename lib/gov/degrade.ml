(* Degradation vocabulary: exhaustion reasons and the detail line an
   inconclusive verdict carries.  The strings are deterministic on
   purpose — degraded reports must still compare byte-identically across
   runs and pool widths, so no timestamps or host figures here. *)

type reason = Cancelled | Deadline | Conflicts | Patterns

let reason_string = function
  | Cancelled -> "cancelled"
  | Deadline -> "deadline exhausted"
  | Conflicts -> "conflict budget exhausted"
  | Patterns -> "pattern budget exhausted"

type partial = {
  units_done : int;
  units_total : int option;
  what : string;
}

let detail ~reason p =
  match p.units_total with
  | Some total ->
      Printf.sprintf "governor: %s; %d/%d %s" (reason_string reason)
        p.units_done total p.what
  | None ->
      Printf.sprintf "governor: %s; %d %s" (reason_string reason) p.units_done
        p.what
