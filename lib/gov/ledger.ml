(* The budget timeline: every governor-tree event — node creation with
   its grant (splits and slices create nodes), every logical charge,
   every retry, every degradation — appended as a timestamped entry.

   One ledger serves a whole governor tree (children inherit it), and
   charges may arrive from any domain (a SAT solve inside a Par job
   charges its governor directly), so the entry list is mutex-protected.
   Entry *order* between parallel jobs is scheduling-dependent; the
   waterfall therefore aggregates per node before reporting, and
   everything timing-flavoured (timestamps, deadline grants) is zeroed
   under [~timings:false] — which is how `symbad report` stays
   byte-identical at any pool width while the per-node logical sums
   still include every worker-lane charge. *)

module Json = Symbad_obs.Json
module Tracer = Symbad_obs.Tracer

type axis = Conflicts | Patterns

let axis_string = function Conflicts -> "conflicts" | Patterns -> "patterns"

type kind =
  | Created of {
      parent : string option;
      conflicts : int option;  (* granted allowance; None = unlimited *)
      patterns : int option;
      deadline_s : float option;  (* seconds left at creation *)
      retries : int;
    }
  | Charge of { axis : axis; amount : int }
  | Retry of { what : string; attempt : int }
  | Degraded of { what : string; reason : string }

type entry = {
  at_us : float;  (* relative to the ledger epoch *)
  node : string;
  kind : kind;
}

type t = {
  lock : Mutex.t;
  epoch_us : float;
  mutable entries : entry list;  (* newest first *)
}

let now_us () = Unix.gettimeofday () *. 1e6

let create () = { lock = Mutex.create (); epoch_us = now_us (); entries = [] }

let record t ~node kind =
  let at_us = now_us () -. t.epoch_us in
  Mutex.lock t.lock;
  t.entries <- { at_us; node; kind } :: t.entries;
  Mutex.unlock t.lock

let entries t =
  Mutex.lock t.lock;
  let es = t.entries in
  Mutex.unlock t.lock;
  List.rev es

let entry_count t = List.length (entries t)

let sum_axis axis es =
  List.fold_left
    (fun acc e ->
      match e.kind with
      | Charge c when c.axis = axis -> acc + c.amount
      | _ -> acc)
    0 es

let spent_conflicts t = sum_axis Conflicts (entries t)
let spent_patterns t = sum_axis Patterns (entries t)

(* --- the waterfall ---------------------------------------------------- *)

type row = {
  label : string;
  parent : string option;
  depth : int;  (* tree depth, for indentation *)
  created : int;  (* node creations under this label *)
  granted_conflicts : int option;  (* summed grants; None if any unlimited *)
  granted_patterns : int option;
  granted_deadline_s : float option;  (* first creation's remaining deadline *)
  granted_retries : int;
  charged_conflicts : int;  (* charges on this node alone *)
  charged_patterns : int;
  subtree_conflicts : int;  (* this node plus every descendant *)
  subtree_patterns : int;
  retries : int;
  degradations : string list;  (* sorted, deduplicated *)
  first_at_us : float;  (* earliest entry, relative to the epoch *)
}

let waterfall t =
  let es = entries t in
  (* aggregate per node label *)
  let tbl : (string, row ref) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  let get node =
    match Hashtbl.find_opt tbl node with
    | Some r -> r
    | None ->
        let r =
          ref
            {
              label = node;
              parent = None;
              depth = 0;
              created = 0;
              granted_conflicts = Some 0;
              granted_patterns = Some 0;
              granted_deadline_s = None;
              granted_retries = 0;
              charged_conflicts = 0;
              charged_patterns = 0;
              subtree_conflicts = 0;
              subtree_patterns = 0;
              retries = 0;
              degradations = [];
              first_at_us = infinity;
            }
        in
        Hashtbl.add tbl node r;
        order := node :: !order;
        r
  in
  let add_grant acc g =
    match (acc, g) with Some a, Some b -> Some (a + b) | _ -> None
  in
  List.iter
    (fun e ->
      let r = get e.node in
      let v = !r in
      let v = { v with first_at_us = Float.min v.first_at_us e.at_us } in
      r :=
        (match e.kind with
        | Created c ->
            {
              v with
              created = v.created + 1;
              parent = (match v.parent with None -> c.parent | p -> p);
              granted_conflicts = add_grant v.granted_conflicts c.conflicts;
              granted_patterns = add_grant v.granted_patterns c.patterns;
              granted_deadline_s =
                (match v.granted_deadline_s with
                | None -> c.deadline_s
                | d -> d);
              granted_retries = max v.granted_retries c.retries;
            }
        | Charge { axis = Conflicts; amount } ->
            { v with charged_conflicts = v.charged_conflicts + amount }
        | Charge { axis = Patterns; amount } ->
            { v with charged_patterns = v.charged_patterns + amount }
        | Retry _ -> { v with retries = v.retries + 1 }
        | Degraded d ->
            { v with degradations = d.reason :: v.degradations }))
    es;
  (* deterministic tree order: roots then children, each level sorted by
     label — creation structure is width-invariant even when entry order
     between parallel charges is not *)
  let nodes = List.rev !order in
  let children parent =
    List.filter (fun n -> !(Hashtbl.find tbl n).parent = Some parent) nodes
    |> List.sort compare
  in
  let roots =
    List.filter
      (fun n ->
        match !(Hashtbl.find tbl n).parent with
        | None -> true
        | Some p -> not (Hashtbl.mem tbl p))
      nodes
    |> List.sort compare
  in
  let rec emit depth n =
    let r = Hashtbl.find tbl n in
    let kids = children n in
    let sub = List.concat_map (emit (depth + 1)) kids in
    let v = !r in
    let v =
      {
        v with
        depth;
        degradations = List.sort_uniq compare v.degradations;
        first_at_us = (if v.first_at_us = infinity then 0. else v.first_at_us);
        subtree_conflicts =
          List.fold_left
            (fun acc (k : row) ->
              if k.depth = depth + 1 then acc + k.subtree_conflicts else acc)
            v.charged_conflicts sub;
        subtree_patterns =
          List.fold_left
            (fun acc (k : row) ->
              if k.depth = depth + 1 then acc + k.subtree_patterns else acc)
            v.charged_patterns sub;
      }
    in
    v :: sub
  in
  List.concat_map (emit 0) roots

(* --- export ------------------------------------------------------------ *)

let opt_int = function None -> Json.Null | Some n -> Json.Int n

let row_to_json ~timings (r : row) =
  Json.Obj
    [
      ("node", Json.Str r.label);
      ("parent", match r.parent with Some p -> Json.Str p | None -> Json.Null);
      ("depth", Json.Int r.depth);
      ("created", Json.Int r.created);
      ("granted_conflicts", opt_int r.granted_conflicts);
      ("granted_patterns", opt_int r.granted_patterns);
      ( "granted_deadline_s",
        if timings then
          match r.granted_deadline_s with
          | Some d -> Json.Float d
          | None -> Json.Null
        else Json.Null );
      ("granted_retries", Json.Int r.granted_retries);
      ("charged_conflicts", Json.Int r.charged_conflicts);
      ("charged_patterns", Json.Int r.charged_patterns);
      ("subtree_conflicts", Json.Int r.subtree_conflicts);
      ("subtree_patterns", Json.Int r.subtree_patterns);
      ("retries", Json.Int r.retries);
      ("degradations", Json.List (List.map (fun d -> Json.Str d) r.degradations));
      ("first_at_us", Json.Float (if timings then r.first_at_us else 0.));
    ]

let to_json ?(timings = true) t =
  Json.Obj
    [
      ("spent_conflicts", Json.Int (spent_conflicts t));
      ("spent_patterns", Json.Int (spent_patterns t));
      ("entries", Json.Int (entry_count t));
      ("waterfall", Json.List (List.map (row_to_json ~timings) (waterfall t)));
    ]

let grant_cell c p =
  let one = function None -> "∞" | Some n -> string_of_int n in
  Printf.sprintf "%s / %s" (one c) (one p)

let to_markdown t =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    "| governor | granted (confl/patt) | spent (confl/patt) | subtree \
     (confl/patt) | retries | degraded |\n";
  Buffer.add_string b "|---|---|---|---|---|---|\n";
  List.iter
    (fun (r : row) ->
      Buffer.add_string b
        (Printf.sprintf "| %s%s | %s | %d / %d | %d / %d | %d | %s |\n"
           (String.concat "" (List.init r.depth (fun _ -> "&nbsp;&nbsp;")))
           r.label
           (grant_cell r.granted_conflicts r.granted_patterns)
           r.charged_conflicts r.charged_patterns r.subtree_conflicts
           r.subtree_patterns r.retries
           (match r.degradations with
           | [] -> "—"
           | ds -> String.concat ", " ds)))
    (waterfall t);
  Buffer.contents b

(* Replay the charges as cumulative Chrome counter samples, one counter
   track per axis — the trace-side view of the budget waterfall. *)
let counter_track t tracer =
  let conflicts = ref 0 and patterns = ref 0 in
  List.iter
    (fun e ->
      match e.kind with
      | Charge { axis; amount } ->
          let counter, total =
            match axis with
            | Conflicts ->
                conflicts := !conflicts + amount;
                ("gov.conflicts_spent", !conflicts)
            | Patterns ->
                patterns := !patterns + amount;
                ("gov.patterns_spent", !patterns)
          in
          Tracer.counter_sample tracer
            ~ts_us:(t.epoch_us +. e.at_us)
            counter (float_of_int total)
      | _ -> ())
    (entries t)
