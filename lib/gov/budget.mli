(** Resource budgets for the verification engines.

    A budget bounds what a verification run may consume along four axes:
    wall-clock time (a deadline), SAT conflicts, test patterns /
    simulation units, and memory (a hint).  [None] on an axis means
    unlimited.  Budgets are immutable descriptions; the mutable spend
    accounting lives in {!Gov}.

    The two logical allowances ([conflicts], [patterns]) are
    deterministic currencies: splitting and spending them depends only
    on the inputs, never on wall-clock time or pool width.  The
    [deadline] is a best-effort wall-clock cutoff polled cooperatively
    at engine step boundaries. *)

type t = {
  deadline : float option;
      (** absolute host instant ([Unix.gettimeofday] scale) after which
          the run must degrade; [None] = no deadline *)
  conflicts : int option;
      (** SAT-conflict allowance shared by every solver call under this
          budget; [None] = unlimited *)
  patterns : int option;
      (** test-pattern / simulation-unit allowance (ATPG vectors
          generated, PCC faults classified); [None] = unlimited *)
  memory_mb : int option;
      (** advisory memory ceiling in megabytes — a sizing hint for
          engines that pre-allocate, never enforced *)
  retries : int;
      (** portfolio retries: how many times an [Inconclusive] engine run
          may be re-dispatched under the remaining budget (default 0) *)
}

val unlimited : t
(** No deadline, no allowances, no retries — the behaviour of every
    engine before the governor existed. *)

val make :
  ?deadline_s:float ->
  ?conflicts:int ->
  ?patterns:int ->
  ?memory_mb:int ->
  ?retries:int ->
  unit ->
  t
(** [make ~deadline_s:2.5 ()] is a budget expiring 2.5 host seconds from
    now.  [deadline_s] is {e relative}; the stored {!field-deadline} is
    absolute.  Negative allowances are clamped to 0 (an already-exhausted
    budget). *)

val is_unlimited : t -> bool
(** No deadline and no logical allowance (the memory hint does not make
    a budget limited). *)

val remaining_s : t -> float option
(** Seconds until the deadline (negative once passed); [None] when the
    budget has no deadline. *)

val deadline_over : t -> bool
(** Has the wall-clock deadline passed?  Always [false] without one. *)

val split : n:int -> t -> t list
(** [split ~n t] divides the logical allowances into [n] near-equal
    shares (earlier shares receive the remainder, so the shares sum
    exactly to the allowance).  The deadline, memory hint and retry
    count are inherited by every share — parallel siblings race the same
    wall clock.  Deterministic: depends only on [t] and [n]. *)

val slice : fraction:float -> t -> t
(** [slice ~fraction t] is the sequential share of [t]: logical
    allowances scaled by [fraction] (clamped to [0, 1], rounded down)
    and the deadline pulled forward to [now + fraction * remaining].
    What a flow level grants to one phase, leaving the rest for the
    phases after it. *)

val pp : Format.formatter -> t -> unit

val to_json : t -> Symbad_obs.Json.t
(** Allowances and the {e relative} seconds left until the deadline
    (absolute instants would make reports non-reproducible). *)
