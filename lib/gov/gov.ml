(* The resource governor: a budget, live spend counters and a cancel
   token, organised as a tree.  Children are granted shares of the
   remaining budget; their charges propagate to every ancestor, so the
   parent's "remaining" always reflects what the whole subtree spent and
   unspent allowance flows forward to the next phase.

   Determinism contract: the logical allowances (conflicts, patterns)
   are split and spent by arithmetic only.  Each parallel job receives
   its share *before* the fan-out, so which job exhausts first does not
   depend on scheduling — parallel runs reproduce sequential ones.  The
   wall-clock deadline is inherently a race against real time and is
   polled best-effort at step boundaries. *)

module Obs = Symbad_obs.Obs
module Json = Symbad_obs.Json
module Severity = Symbad_obs.Severity

type t = {
  label : string;
  budget : Budget.t;
  cancel : Cancel.t;
  spent_conflicts : int Atomic.t;
  spent_patterns : int Atomic.t;
  parent : t option;
}

let make ?(label = "gov") ?(cancel = Cancel.none) ?parent budget =
  {
    label;
    budget;
    cancel;
    spent_conflicts = Atomic.make 0;
    spent_patterns = Atomic.make 0;
    parent;
  }

let create ?label ?cancel budget = make ?label ?cancel budget
let unlimited = make ~label:"unlimited" Budget.unlimited
let get = function Some g -> g | None -> unlimited
let label t = t.label
let budget t = t.budget
let cancel_token t = t.cancel

(* --- spend accounting ------------------------------------------------- *)

let rec charge counter_of t n =
  if n > 0 then begin
    ignore (Atomic.fetch_and_add (counter_of t) n);
    match t.parent with Some p -> charge counter_of p n | None -> ()
  end

let charge_conflicts t n = charge (fun t -> t.spent_conflicts) t n
let charge_patterns t n = charge (fun t -> t.spent_patterns) t n

let left allowance spent =
  Option.map (fun a -> max 0 (a - Atomic.get spent)) allowance

let conflicts_left t = left t.budget.Budget.conflicts t.spent_conflicts
let patterns_left t = left t.budget.Budget.patterns t.spent_patterns

let remaining t =
  { t.budget with
    Budget.conflicts = conflicts_left t;
    patterns = patterns_left t }

(* --- exhaustion ------------------------------------------------------- *)

let exhaustion t =
  if Cancel.is_cancelled t.cancel then Some Degrade.Cancelled
  else if conflicts_left t = Some 0 then Some Degrade.Conflicts
  else if patterns_left t = Some 0 then Some Degrade.Patterns
  else if Budget.deadline_over t.budget then Some Degrade.Deadline
  else None

let out_of_budget t = exhaustion t <> None

(* --- telemetry -------------------------------------------------------- *)

(* All reporting happens on the owning domain only (Obs.enabled is false
   on Par workers), so a child governor used inside a parallel job stays
   silent and the split event at the fan-out point tells the story. *)
let event ?(severity = Severity.Info) ~counter name args =
  if Obs.enabled () then begin
    Obs.incr_counter counter;
    Obs.event ~severity ~args name
  end

let opt_int = function None -> Json.Null | Some n -> Json.Int n

let note_degraded t ~what reason =
  event ~severity:Severity.Warn ~counter:"gov.degradations" "gov.degrade"
    [
      ("gov", Json.Str t.label);
      ("what", Json.Str what);
      ("reason", Json.Str (Degrade.reason_string reason));
    ]

(* --- hierarchy -------------------------------------------------------- *)

let split ?label:(l = "split") t n =
  let rem = remaining t in
  event ~counter:"gov.splits" "gov.split"
    [
      ("gov", Json.Str t.label);
      ("into", Json.Str l);
      ("shares", Json.Int n);
      ("conflicts_left", opt_int rem.Budget.conflicts);
      ("patterns_left", opt_int rem.Budget.patterns);
    ];
  List.mapi
    (fun i share ->
      make ~label:(Printf.sprintf "%s.%s/%d" t.label l i) ~cancel:t.cancel
        ~parent:t share)
    (Budget.split ~n rem)

let slice ?label:(l = "slice") ~fraction t =
  let share = Budget.slice ~fraction (remaining t) in
  event ~counter:"gov.splits" "gov.split"
    [
      ("gov", Json.Str t.label);
      ("into", Json.Str l);
      ("fraction", Json.Float fraction);
      ("conflicts_left", opt_int share.Budget.conflicts);
      ("patterns_left", opt_int share.Budget.patterns);
    ];
  make ~label:(Printf.sprintf "%s.%s" t.label l) ~cancel:t.cancel ~parent:t
    share

(* --- portfolio retry -------------------------------------------------- *)

let with_retry ?label:(l = "engine") t ~inconclusive run =
  let rec go attempt =
    let r = run ~attempt in
    if inconclusive r && attempt < t.budget.Budget.retries
       && not (out_of_budget t)
    then begin
      event ~counter:"gov.retries" "gov.retry"
        [
          ("gov", Json.Str t.label);
          ("what", Json.Str l);
          ("attempt", Json.Int (attempt + 1));
        ];
      go (attempt + 1)
    end
    else r
  in
  go 0

let pp fmt t =
  Fmt.pf fmt "%s: %a%a" t.label Budget.pp (remaining t)
    (fun fmt -> function
      | None -> ()
      | Some r -> Fmt.pf fmt " [%s]" (Degrade.reason_string r))
    (exhaustion t)
