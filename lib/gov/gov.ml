(* The resource governor: a budget, live spend counters and a cancel
   token, organised as a tree.  Children are granted shares of the
   remaining budget; their charges propagate to every ancestor, so the
   parent's "remaining" always reflects what the whole subtree spent and
   unspent allowance flows forward to the next phase.

   Determinism contract: the logical allowances (conflicts, patterns)
   are split and spent by arithmetic only.  Each parallel job receives
   its share *before* the fan-out, so which job exhausts first does not
   depend on scheduling — parallel runs reproduce sequential ones.  The
   wall-clock deadline is inherently a race against real time and is
   polled best-effort at step boundaries. *)

module Obs = Symbad_obs.Obs
module Json = Symbad_obs.Json
module Severity = Symbad_obs.Severity

type t = {
  label : string;
  budget : Budget.t;
  cancel : Cancel.t;
  spent_conflicts : int Atomic.t;
  spent_patterns : int Atomic.t;
  parent : t option;
  ledger : Ledger.t option;  (* inherited root → children *)
}

let make ?(label = "gov") ?(cancel = Cancel.none) ?parent ?ledger budget =
  let ledger =
    match (ledger, parent) with
    | (Some _ as l), _ -> l
    | None, Some p -> p.ledger
    | None, None -> None
  in
  (match ledger with
  | Some l ->
      Ledger.record l ~node:label
        (Ledger.Created
           {
             parent = Option.map (fun p -> p.label) parent;
             conflicts = budget.Budget.conflicts;
             patterns = budget.Budget.patterns;
             deadline_s = Budget.remaining_s budget;
             retries = budget.Budget.retries;
           })
  | None -> ());
  {
    label;
    budget;
    cancel;
    spent_conflicts = Atomic.make 0;
    spent_patterns = Atomic.make 0;
    parent;
    ledger;
  }

let create ?label ?cancel ?ledger budget = make ?label ?cancel ?ledger budget
let unlimited = make ~label:"unlimited" Budget.unlimited
let get = function Some g -> g | None -> unlimited
let label t = t.label
let budget t = t.budget
let cancel_token t = t.cancel
let ledger t = t.ledger

(* --- spend accounting ------------------------------------------------- *)

let rec charge counter_of t n =
  if n > 0 then begin
    ignore (Atomic.fetch_and_add (counter_of t) n);
    match t.parent with Some p -> charge counter_of p n | None -> ()
  end

(* each charge is recorded once, on the directly-charged node (the
   atomic propagation handles the ancestors), so ledger sums equal the
   root's spend counters exactly *)
let note_charge t axis n =
  if n > 0 then
    match t.ledger with
    | Some l ->
        Ledger.record l ~node:t.label (Ledger.Charge { axis; amount = n })
    | None -> ()

let charge_conflicts t n =
  note_charge t Ledger.Conflicts n;
  charge (fun t -> t.spent_conflicts) t n

let charge_patterns t n =
  note_charge t Ledger.Patterns n;
  charge (fun t -> t.spent_patterns) t n

let spent_conflicts t = Atomic.get t.spent_conflicts
let spent_patterns t = Atomic.get t.spent_patterns

let left allowance spent =
  Option.map (fun a -> max 0 (a - Atomic.get spent)) allowance

let conflicts_left t = left t.budget.Budget.conflicts t.spent_conflicts
let patterns_left t = left t.budget.Budget.patterns t.spent_patterns

let remaining t =
  { t.budget with
    Budget.conflicts = conflicts_left t;
    patterns = patterns_left t }

(* --- exhaustion ------------------------------------------------------- *)

let exhaustion t =
  if Cancel.is_cancelled t.cancel then Some Degrade.Cancelled
  else if conflicts_left t = Some 0 then Some Degrade.Conflicts
  else if patterns_left t = Some 0 then Some Degrade.Patterns
  else if Budget.deadline_over t.budget then Some Degrade.Deadline
  else None

let out_of_budget t = exhaustion t <> None

(* --- telemetry -------------------------------------------------------- *)

(* Obs routes these through the per-job buffer when called inside a Par
   worker (merged at the fan-in) and straight to the registry on the
   owning domain; the ledger records in parallel with its own lock. *)
let event ?(severity = Severity.Info) ~counter name args =
  if Obs.enabled () then begin
    Obs.incr_counter counter;
    Obs.event ~severity ~args name
  end

let opt_int = function None -> Json.Null | Some n -> Json.Int n

let note_degraded t ~what reason =
  (match t.ledger with
  | Some l ->
      Ledger.record l ~node:t.label
        (Ledger.Degraded { what; reason = Degrade.reason_string reason })
  | None -> ());
  event ~severity:Severity.Warn ~counter:"gov.degradations" "gov.degrade"
    [
      ("gov", Json.Str t.label);
      ("what", Json.Str what);
      ("reason", Json.Str (Degrade.reason_string reason));
    ]

(* --- hierarchy -------------------------------------------------------- *)

let split ?label:(l = "split") t n =
  let rem = remaining t in
  event ~counter:"gov.splits" "gov.split"
    [
      ("gov", Json.Str t.label);
      ("into", Json.Str l);
      ("shares", Json.Int n);
      ("conflicts_left", opt_int rem.Budget.conflicts);
      ("patterns_left", opt_int rem.Budget.patterns);
    ];
  List.mapi
    (fun i share ->
      make ~label:(Printf.sprintf "%s.%s/%d" t.label l i) ~cancel:t.cancel
        ~parent:t share)
    (Budget.split ~n rem)

let slice ?label:(l = "slice") ~fraction t =
  let share = Budget.slice ~fraction (remaining t) in
  event ~counter:"gov.splits" "gov.split"
    [
      ("gov", Json.Str t.label);
      ("into", Json.Str l);
      ("fraction", Json.Float fraction);
      ("conflicts_left", opt_int share.Budget.conflicts);
      ("patterns_left", opt_int share.Budget.patterns);
    ];
  make ~label:(Printf.sprintf "%s.%s" t.label l) ~cancel:t.cancel ~parent:t
    share

(* --- portfolio retry -------------------------------------------------- *)

let with_retry ?label:(l = "engine") t ~inconclusive run =
  let rec go attempt =
    let r = run ~attempt in
    if inconclusive r && attempt < t.budget.Budget.retries
       && not (out_of_budget t)
    then begin
      (match t.ledger with
      | Some led ->
          Ledger.record led ~node:t.label
            (Ledger.Retry { what = l; attempt = attempt + 1 })
      | None -> ());
      event ~counter:"gov.retries" "gov.retry"
        [
          ("gov", Json.Str t.label);
          ("what", Json.Str l);
          ("attempt", Json.Int (attempt + 1));
        ];
      go (attempt + 1)
    end
    else r
  in
  go 0

let pp fmt t =
  Fmt.pf fmt "%s: %a%a" t.label Budget.pp (remaining t)
    (fun fmt -> function
      | None -> ()
      | Some r -> Fmt.pf fmt " [%s]" (Degrade.reason_string r))
    (exhaustion t)
