(** The budget timeline of a governor tree: node creations (with their
    grants — splits and slices create nodes), logical charges, retries
    and degradations, each a timestamped entry, aggregated into a
    "budget waterfall" per governor node.

    One ledger serves a whole tree (children inherit their parent's);
    entries may arrive from any domain, so recording is mutex-protected.
    The waterfall aggregates per node and orders rows by tree structure
    (which is pool-width-invariant) so that, with timestamps zeroed
    ([~timings:false]), the export is byte-identical at any [--jobs]
    while the per-node sums include every worker-lane charge. *)

type t

type axis = Conflicts | Patterns

val axis_string : axis -> string

type kind =
  | Created of {
      parent : string option;
      conflicts : int option;
      patterns : int option;
      deadline_s : float option;
      retries : int;
    }  (** a governor node came into being with this grant *)
  | Charge of { axis : axis; amount : int }
  | Retry of { what : string; attempt : int }
  | Degraded of { what : string; reason : string }

type entry = {
  at_us : float;  (** microseconds since the ledger epoch *)
  node : string;  (** governor label *)
  kind : kind;
}

val create : unit -> t
val record : t -> node:string -> kind -> unit

val entries : t -> entry list
(** All entries, oldest first. *)

val entry_count : t -> int

val spent_conflicts : t -> int
(** Sum of every conflict charge across all nodes — each charge is
    recorded once, on the directly-charged node, so this equals the
    root governor's propagated spend counter. *)

val spent_patterns : t -> int

type row = {
  label : string;
  parent : string option;
  depth : int;
  created : int;
  granted_conflicts : int option;
  granted_patterns : int option;
  granted_deadline_s : float option;
  granted_retries : int;
  charged_conflicts : int;
  charged_patterns : int;
  subtree_conflicts : int;
  subtree_patterns : int;
  retries : int;
  degradations : string list;
  first_at_us : float;
}

val waterfall : t -> row list
(** One row per governor node, in deterministic tree order (roots and
    siblings sorted by label, children after their parent). *)

val to_json : ?timings:bool -> t -> Symbad_obs.Json.t
(** Totals plus the waterfall rows; [~timings:false] zeroes timestamps
    and deadline grants for reproducible output. *)

val to_markdown : t -> string
(** The waterfall as a markdown table (logical columns only). *)

val counter_track : t -> Symbad_obs.Tracer.t -> unit
(** Replay the cumulative spend as Chrome counter samples
    ([gov.conflicts_spent] / [gov.patterns_spent]) on a tracer — the
    trace-side budget waterfall. *)
