(** The resource governor: one {!Budget} plus live spend accounting and
    a {!Cancel} token, threaded through every verification engine so a
    run always terminates on time with the best partial result.

    A governor is handed to an engine entry point ([Sat.Solver.solve],
    [Mc.Engine.check], the ATPG generators, [Pcc.run], the LPV checks,
    [Core.Flow.run]); the engine polls {!out_of_budget} at step
    boundaries, charges what it consumed ({!charge_conflicts},
    {!charge_patterns}), and degrades to an inconclusive partial result
    when the governor says stop (see {!Degrade}).

    Hierarchy: {!split} and {!slice} derive child governors over the
    {e remaining} budget — flow levels split across engines, engines
    split across parallel jobs.  A child's charges propagate to every
    ancestor, so unspent allowance flows forward to whatever runs next.
    Charging is domain-safe (atomics); splitting of the logical
    allowances is deterministic, so parallel runs reproduce sequential
    ones at any pool width.

    Telemetry: splits, exhaustions, retries and degradations are
    reported as [gov.*] events and counters whenever [Symbad_obs] is
    enabled (buffered and merged when emitted inside a Par job).  With a
    {!Ledger} attached at the root, every node creation, charge, retry
    and degradation is additionally recorded as a timestamped ledger
    entry — the budget waterfall `symbad report` renders. *)

type t

val create : ?label:string -> ?cancel:Cancel.t -> ?ledger:Ledger.t -> Budget.t -> t
(** A root governor over [budget].  [label] names it in telemetry
    (default ["gov"]); [cancel] defaults to {!Cancel.none}; [ledger],
    when given, records the budget timeline of the whole tree (children
    inherit it). *)

val unlimited : t
(** The shared do-nothing governor: unlimited budget, never cancelled.
    What engine entry points use when handed no governor — identical
    behaviour to the pre-governor code. *)

val get : t option -> t
(** [get (Some g)] is [g]; [get None] is {!unlimited} — the idiom for
    [?gov] optional arguments. *)

val label : t -> string
val budget : t -> Budget.t
(** The budget this governor was created over (allowances as granted,
    not as remaining — see {!remaining}). *)

val cancel_token : t -> Cancel.t

val ledger : t -> Ledger.t option
(** The ledger this tree records into, if one was attached. *)

(** {1 Spend accounting} *)

val charge_conflicts : t -> int -> unit
(** Record SAT conflicts spent.  Propagates to every ancestor.
    Domain-safe; negative or zero charges are ignored. *)

val charge_patterns : t -> int -> unit
(** Record test patterns / simulation units spent.  Same contract as
    {!charge_conflicts}. *)

val conflicts_left : t -> int option
(** Allowance minus spend, floored at 0; [None] = unlimited. *)

val patterns_left : t -> int option

val spent_conflicts : t -> int
(** Total conflicts charged to this node and its whole subtree (charges
    propagate upward).  At the root this equals the ledger's
    {!Ledger.spent_conflicts} exactly. *)

val spent_patterns : t -> int

val remaining : t -> Budget.t
(** The budget still available: granted allowances minus spend, same
    deadline, same retry count.  What {!split} and {!slice} divide. *)

(** {1 Exhaustion} *)

val exhaustion : t -> Degrade.reason option
(** Why this governor wants the run stopped, or [None] while budget
    remains.  Checks the cancel flag and the logical allowances first
    (atomic reads), then the deadline (one clock read) — cheap enough to
    poll at every step boundary. *)

val out_of_budget : t -> bool
(** [exhaustion t <> None]. *)

(** {1 Hierarchy} *)

val split : ?label:string -> t -> int -> t list
(** [split g n] derives [n] child governors sharing the cancel token,
    each granted a near-equal share of the remaining logical allowances
    and the same deadline — the parallel split (siblings race the same
    clock).  Child charges propagate to [g].  Emits a [gov.split]
    event.  Raises [Invalid_argument] when [n < 1]. *)

val slice : ?label:string -> fraction:float -> t -> t
(** [slice g ~fraction] derives one child governor over
    [Budget.slice ~fraction (remaining g)] — the sequential split: the
    child gets an earlier deadline and a proportional allowance, and
    whatever it leaves unspent is still in [g] for the next phase. *)

(** {1 Portfolio retry} *)

val with_retry :
  ?label:string ->
  t ->
  inconclusive:('a -> bool) ->
  (attempt:int -> 'a) ->
  'a
(** [with_retry g ~inconclusive run] dispatches [run ~attempt:0]; while
    the result is inconclusive, budget remains and fewer than
    [(budget g).retries] retries have been spent, it re-dispatches with
    the next attempt number (the engine re-seeds or restarts from it).
    Emits a [gov.retry] event per re-dispatch. *)

(** {1 Telemetry} *)

val note_degraded : t -> what:string -> Degrade.reason -> unit
(** Report that a run under this governor degraded: a [gov.degrade]
    warning event plus the [gov.degradations] counter (buffered on
    worker domains), and a ledger entry when one is attached. *)

val pp : Format.formatter -> t -> unit
(** Label, remaining budget and exhaustion state. *)
