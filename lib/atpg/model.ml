(* The device-under-verification abstraction for high-level ATPG: a
   deterministic behavioural model with declared inputs, a coverage-point
   universe, and a high-level fault list.  [run] executes the model,
   optionally recording coverage and optionally under an injected fault;
   a test detects a fault when outputs differ from the fault-free run. *)

type fault = { fid : string }

type t = {
  name : string;
  inputs : (string * int) list;  (* input name, bit width *)
  universe : Coverage.point list;
  faults : fault list;
  run : ?cover:Coverage.t -> ?fault:fault -> int array -> int array;
      (* input values (per [inputs] order, masked to width) -> outputs *)
}

type test = int array

let input_count m = List.length m.inputs

let mask_inputs m (test : test) =
  let widths = Array.of_list (List.map snd m.inputs) in
  if Array.length test <> Array.length widths then
    invalid_arg ("Model.mask_inputs: arity for " ^ m.name);
  Array.mapi (fun i v -> v land ((1 lsl widths.(i)) - 1)) test

let run ?cover ?fault m test = m.run ?cover ?fault (mask_inputs m test)

(* Coverage accumulated by a test suite: per-test hit sets are pure, so
   they fan out on the pool; the in-order merge keeps the accumulated
   table identical to the sequential loop. *)
let coverage ?pool m tests =
  let pool = Symbad_par.Par.get pool in
  let covs =
    Symbad_par.Par.map ~label:"atpg.coverage" pool
      (fun t ->
        let c = Coverage.create () in
        ignore (run ~cover:c m t);
        c)
      tests
  in
  let c = Coverage.create () in
  List.iter (fun ci -> Coverage.merge ~into:c ci) covs;
  c

let coverage_report ?pool m tests =
  Coverage.report ~universe:m.universe (coverage ?pool m tests)

(* Fault simulation: which faults does the suite detect?  One job per
   fault; each job replays the fault-free and faulty runs itself, so the
   jobs share nothing mutable. *)
let detected_faults ?pool m tests =
  let pool = Symbad_par.Par.get pool in
  Symbad_par.Par.map ~label:"atpg.fault_sim" pool
    (fun fault ->
      (fault, List.exists (fun t -> run m t <> run ~fault m t) tests))
    m.faults
  |> List.filter_map (fun (f, detected) -> if detected then Some f else None)

let fault_coverage ?pool m tests =
  match m.faults with
  | [] -> 1.
  | faults ->
      float_of_int (List.length (detected_faults ?pool m tests))
      /. float_of_int (List.length faults)
