(** SAT-based test generation (the formal engine of Laerte++), working
    on the RTL view: to cover "output bit at polarity within depth d" it
    asks the solver for a driving input sequence by unrolling the
    netlist.  UNSAT at every depth proves the point unreachable —
    a conclusion no simulation-based engine can draw. *)

type target = { output : string; bit : int; polarity : bool }

type outcome =
  | Test of int array list  (** input vectors, one per cycle *)
  | Unreachable  (** proven at every depth up to the bound *)
  | Budget_exceeded

val all_targets : Symbad_hdl.Netlist.t -> target list
(** Both polarities of every output bit. *)

val cover_target :
  ?max_depth:int -> ?max_conflicts:int -> Symbad_hdl.Netlist.t -> target -> outcome

type report = {
  covered : int;
  unreachable : int;
  unresolved : int;
  tests : int array list list;  (** one input sequence per covered target *)
}

val generate :
  ?max_depth:int -> ?max_conflicts:int -> Symbad_hdl.Netlist.t -> report
(** Chase every target of the netlist.

    [max_conflicts] is the historical per-call budget knob, deprecated
    in favour of dispatching through a governor-shaped driver (see
    [Symbad_core.Engines] for the unified
    [?gov ?pool ?jobs ~seed target] shape). *)

val pp_report : Format.formatter -> report -> unit
