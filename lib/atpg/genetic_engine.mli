(** Genetic test-pattern generation (the simulation-based engine of
    Laerte++).

    Fitness of a vector is the number of still-uncovered points it hits;
    every vector that makes progress is committed to the suite.
    Tournament selection, uniform crossover, per-gene mutation, plus
    boundary-value immigrants for the rare control-flow corners. *)

type params = {
  population : int;
  generations : int;
  mutation_permille : int;  (** per-gene mutation probability, 1/1000 *)
  tournament : int;
  seed : int;
}

val default_params : params

val generate :
  ?pool:Symbad_par.Par.pool ->
  ?gov:Symbad_gov.Gov.t ->
  ?params:params ->
  Model.t ->
  Model.test list
(** The committed suite, in discovery order (only coverage-increasing
    vectors are kept).  Population scoring — the model runs — fans out
    in chunks on [pool]; commits happen in population order on the
    calling domain, so the suite is identical at any pool width.

    [gov] is polled once per generation and charged one pattern per
    model run; an exhausted budget stops evolution early and the suite
    committed so far is returned — never an exception. *)
