(** Coverage instrumentation for behavioural models.

    Models declare a universe of points and mark hits while executing;
    the engines chase the unhit points.  Metrics are the ones Laerte++
    reports: statement, branch and condition coverage plus the stricter
    bit coverage (every output bit observed at both polarities). *)

type point =
  | Stmt of string
  | Branch of string * bool  (** both arms of each decision *)
  | Cond of string * bool  (** both values of each atomic condition *)
  | Bit of string * int * bool  (** output name, bit index, polarity *)

val point_to_string : point -> string

type t

val create : unit -> t

val hit : t -> point -> unit
val stmt : t -> string -> unit
val branch : t -> string -> bool -> unit
val cond : t -> string -> bool -> unit

val out_bits : t -> string -> width:int -> int -> unit
(** Record every bit of an output word at its observed polarity. *)

val is_hit : t -> point -> bool
val hit_count : t -> point -> int
val covered_points : t -> int
val merge : into:t -> t -> unit

type report = {
  statement : float;
  branch_ : float;
  condition : float;
  bit : float;
  total : float;
  hit_points : int;  (** points hit, across all four kinds *)
  total_points : int;  (** universe size *)
  missed : point list;  (** the coverage frontier *)
}

val report : universe:point list -> t -> report
val pp_report : Format.formatter -> report -> unit
