(** The device-under-verification abstraction for high-level ATPG: a
    deterministic behavioural model with declared inputs, a
    coverage-point universe, and a high-level fault list. *)

type fault = { fid : string }

type t = {
  name : string;
  inputs : (string * int) list;  (** input name, bit width *)
  universe : Coverage.point list;
  faults : fault list;
  run : ?cover:Coverage.t -> ?fault:fault -> int array -> int array;
      (** input values (per [inputs] order, masked) -> outputs *)
}

type test = int array

val input_count : t -> int

val mask_inputs : t -> test -> test
(** Mask each value to its declared width; raises on arity mismatch. *)

val run : ?cover:Coverage.t -> ?fault:fault -> t -> test -> int array

val coverage : ?pool:Symbad_par.Par.pool -> t -> test list -> Coverage.t
(** Coverage accumulated over a suite (per-test runs fan out on [pool];
    the in-order merge keeps the result identical at any width). *)

val coverage_report : ?pool:Symbad_par.Par.pool -> t -> test list -> Coverage.report

val detected_faults : ?pool:Symbad_par.Par.pool -> t -> test list -> fault list
(** A test detects a fault when outputs differ from the fault-free run;
    fault simulation runs one job per fault on [pool]. *)

val fault_coverage : ?pool:Symbad_par.Par.pool -> t -> test list -> float
