(* Test-bench quality evaluation: the level-1 functional-verification
   report.  Given a model and a suite, measures the four coverage metrics
   and the high-level fault coverage, which is what tells the designer
   whether the test bench would have exposed the seeded design errors. *)

type evaluation = {
  model : string;
  engine : string;
  tests : int;
  coverage : Coverage.report;
  fault_coverage : float;
  undetected : string list;  (* fault ids the suite misses *)
}

let evaluate ?pool ~engine model tests =
  let coverage = Model.coverage_report ?pool model tests in
  let detected = Model.detected_faults ?pool model tests in
  let undetected =
    List.filter (fun f -> not (List.memq f detected)) model.Model.faults
    |> List.map (fun f -> f.Model.fid)
  in
  let fault_coverage =
    match model.Model.faults with
    | [] -> 1.
    | faults ->
        float_of_int (List.length detected) /. float_of_int (List.length faults)
  in
  {
    model = model.Model.name;
    engine;
    tests = List.length tests;
    coverage;
    fault_coverage;
    undetected;
  }

(* Head-to-head of the engines at equal pattern budget, the shape the
   ATPG experiment reports: formal/guided engines beat random. *)
let compare_engines ?pool ?(budget = 64) ?(seed = 1) model =
  let random = Random_engine.generate ~seed ~count:budget model in
  let genetic =
    Genetic_engine.generate ?pool
      ~params:
        {
          Genetic_engine.default_params with
          Genetic_engine.seed;
          generations = 1000;
          population = 16;
        }
      model
  in
  (* GA commits only coverage-increasing vectors; cap at the same budget *)
  let genetic = List.filteri (fun i _ -> i < budget) genetic in
  [
    evaluate ?pool ~engine:"random" model random;
    evaluate ?pool ~engine:"genetic" model genetic;
  ]

let pp_evaluation fmt e =
  Fmt.pf fmt "%-10s %-8s %3d tests: %a faults %.0f%%" e.model e.engine e.tests
    Coverage.pp_report e.coverage
    (100. *. e.fault_coverage)
