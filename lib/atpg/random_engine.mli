(** Baseline engine: uniformly random test vectors (deterministic). *)

val generate :
  ?seed:int -> ?gov:Symbad_gov.Gov.t -> count:int -> Model.t -> Model.test list
(** [count] uniformly random vectors from a PRNG seeded with [seed].
    [gov] charges one pattern per vector and clamps [count] to the
    remaining pattern allowance, so an exhausted governor yields a
    shorter (possibly empty) suite — the partial result. *)
