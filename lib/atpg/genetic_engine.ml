(* Genetic test-pattern generation (the simulation-based engine of
   Laerte++).

   The generator maintains a population of input vectors; fitness of a
   vector is the number of still-uncovered points it hits, so selection
   pressure always points at the coverage frontier.  Every vector that
   makes progress is committed to the test suite and the frontier
   shrinks.  Tournament selection, uniform crossover, per-gene
   mutation. *)

module Rng = Symbad_image.Rng
module Obs = Symbad_obs.Obs
module Gov = Symbad_gov.Gov

type params = {
  population : int;
  generations : int;
  mutation_permille : int;  (* per-gene mutation probability, 1/1000ths *)
  tournament : int;
  seed : int;
}

let default_params =
  { population = 32; generations = 60; mutation_permille = 80; tournament = 3;
    seed = 1 }

(* The expensive half of fitness — running the model — depends only on
   the vector, so it parallelises; the cheap half (which of the hit
   points are new) depends on the committed set and stays sequential. *)
let hit_points_of model test =
  let c = Coverage.create () in
  ignore (Model.run ~cover:c model test);
  List.filter (Coverage.is_hit c) model.Model.universe

let fresh_of covered hits =
  List.rev (List.filter (fun p -> not (Hashtbl.mem covered p)) hits)

let generate ?pool ?gov ?(params = default_params) model =
  let pool = Symbad_par.Par.get pool in
  let gov = Gov.get gov in
  let rng = Rng.create params.seed in
  let widths = Array.of_list (List.map snd model.Model.inputs) in
  let random_vector () = Array.map (fun w -> Rng.int rng (1 lsl w)) widths in
  (* boundary-value immigrants: extreme operand values (0, max, 1) hit
     the rare control-flow corners uniform sampling almost never finds *)
  let boundary_vector () =
    Array.map
      (fun w ->
        match Rng.int rng 4 with
        | 0 -> 0
        | 1 -> (1 lsl w) - 1
        | 2 -> 1
        | _ -> Rng.int rng (1 lsl w))
      widths
  in
  let mutate v =
    Array.mapi
      (fun i x ->
        if Rng.int rng 1000 < params.mutation_permille then
          (* half the mutations are single-bit flips, half fresh draws:
             bit flips walk the neighbourhood, draws escape plateaus *)
          if Rng.bool rng then x lxor (1 lsl Rng.int rng widths.(i))
          else Rng.int rng (1 lsl widths.(i))
        else x)
      v
  in
  let crossover a b =
    Array.mapi (fun i x -> if Rng.bool rng then x else b.(i)) a
  in
  let covered : (Coverage.point, unit) Hashtbl.t = Hashtbl.create 64 in
  let suite = ref [] in
  let commit test fresh =
    suite := test :: !suite;
    List.iter (fun p -> Hashtbl.replace covered p ()) fresh
  in
  let population = ref (List.init params.population (fun _ -> random_vector ())) in
  let total = List.length model.Model.universe in
  let generation = ref 0 in
  (* the governor is polled per generation: an exhausted budget stops
     evolution and returns the suite committed so far (the partial
     result); each generation charges one pattern per model run *)
  while
    !generation < params.generations
    && Hashtbl.length covered < total
    && not (Gov.out_of_budget gov)
  do
    incr generation;
    Gov.charge_patterns gov params.population;
    (* evaluate: chunked population scoring on the pool (model runs are
       pure), then fitness = number of new points committed in
       population order — the same suite as the sequential loop *)
    let runs =
      Symbad_par.Par.map ~label:"atpg.population" pool
        (fun v -> (v, hit_points_of model v))
        !population
    in
    let scored =
      List.map
        (fun (v, hits) ->
          let fresh = fresh_of covered hits in
          if fresh <> [] then commit v fresh;
          (v, List.length fresh))
        runs
    in
    let pick () =
      (* tournament selection over the scored population *)
      let arr = Array.of_list scored in
      let best = ref arr.(Rng.int rng (Array.length arr)) in
      for _ = 2 to params.tournament do
        let cand = arr.(Rng.int rng (Array.length arr)) in
        if snd cand > snd !best then best := cand
      done;
      fst !best
    in
    (* coverage-over-vectors curve: x = suite size so far, y = coverage *)
    if Obs.enabled () && total > 0 then
      Obs.set_gauge
        ~x:(float_of_int (List.length !suite))
        "atpg.coverage"
        (float_of_int (Hashtbl.length covered) /. float_of_int total);
    population :=
      List.init params.population (fun i ->
          (* immigrants keep diversity; one of them probes boundaries *)
          if i = 0 then boundary_vector ()
          else if i = 1 then random_vector ()
          else mutate (crossover (pick ()) (pick ())))
  done;
  List.rev !suite
