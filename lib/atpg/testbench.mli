(** Test-bench quality evaluation: coverage metrics plus high-level
    fault coverage — the level-1 functional-verification report. *)

type evaluation = {
  model : string;
  engine : string;
  tests : int;
  coverage : Coverage.report;
  fault_coverage : float;
  undetected : string list;  (** fault ids the suite misses *)
}

val evaluate :
  ?pool:Symbad_par.Par.pool ->
  engine:string ->
  Model.t ->
  Model.test list ->
  evaluation
(** Coverage and fault simulation fan out on [pool]; the evaluation is
    identical at any pool width. *)

val compare_engines :
  ?pool:Symbad_par.Par.pool -> ?budget:int -> ?seed:int -> Model.t -> evaluation list
(** Random vs genetic at equal pattern budget. *)

val pp_evaluation : Format.formatter -> evaluation -> unit
