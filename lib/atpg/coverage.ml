(* Coverage instrumentation for behavioural models.

   Models declare a universe of coverage points and mark hits while
   executing; the ATPG engines chase the unhit points.  The metrics are
   the ones Laerte++ reports: statement, branch and condition coverage,
   plus the stricter bit coverage (every observable bit of every output
   seen at both polarities). *)

type point =
  | Stmt of string
  | Branch of string * bool  (* both arms of each decision *)
  | Cond of string * bool  (* both values of each atomic condition *)
  | Bit of string * int * bool  (* output name, bit index, polarity *)

let point_to_string = function
  | Stmt s -> Printf.sprintf "stmt:%s" s
  | Branch (s, v) -> Printf.sprintf "branch:%s=%b" s v
  | Cond (s, v) -> Printf.sprintf "cond:%s=%b" s v
  | Bit (s, i, v) -> Printf.sprintf "bit:%s[%d]=%b" s i v

type t = { hits : (point, int) Hashtbl.t }

let create () = { hits = Hashtbl.create 64 }

let hit c point =
  Hashtbl.replace c.hits point
    (1 + Option.value ~default:0 (Hashtbl.find_opt c.hits point))

let stmt c id = hit c (Stmt id)
let branch c id v = hit c (Branch (id, v))
let cond c id v = hit c (Cond (id, v))

(* Record every bit of an output word (both polarities accumulate over a
   test suite). *)
let out_bits c name ~width value =
  for i = 0 to width - 1 do
    hit c (Bit (name, i, (value lsr i) land 1 = 1))
  done

let is_hit c point = Hashtbl.mem c.hits point
let hit_count c point = Option.value ~default:0 (Hashtbl.find_opt c.hits point)
let covered_points c = Hashtbl.length c.hits

let merge ~into src =
  Hashtbl.iter
    (fun point n ->
      Hashtbl.replace into.hits point
        (n + Option.value ~default:0 (Hashtbl.find_opt into.hits point)))
    src.hits

type report = {
  statement : float;
  branch_ : float;
  condition : float;
  bit : float;
  total : float;
  hit_points : int;
  total_points : int;
  missed : point list;
}

let ratio hits total = if total = 0 then 1. else float_of_int hits /. float_of_int total

let report ~universe c =
  let of_kind pred = List.filter pred universe in
  let count pred =
    let pts = of_kind pred in
    (List.length (List.filter (is_hit c) pts), List.length pts)
  in
  let s_hit, s_tot = count (function Stmt _ -> true | _ -> false) in
  let b_hit, b_tot = count (function Branch _ -> true | _ -> false) in
  let c_hit, c_tot = count (function Cond _ -> true | _ -> false) in
  let x_hit, x_tot = count (function Bit _ -> true | _ -> false) in
  {
    statement = ratio s_hit s_tot;
    branch_ = ratio b_hit b_tot;
    condition = ratio c_hit c_tot;
    bit = ratio x_hit x_tot;
    total = ratio (s_hit + b_hit + c_hit + x_hit) (s_tot + b_tot + c_tot + x_tot);
    hit_points = s_hit + b_hit + c_hit + x_hit;
    total_points = s_tot + b_tot + c_tot + x_tot;
    missed = List.filter (fun p -> not (is_hit c p)) universe;
  }

let pp_report fmt r =
  Fmt.pf fmt "stmt %.1f%% branch %.1f%% cond %.1f%% bit %.1f%% (total %.1f%%)"
    (100. *. r.statement) (100. *. r.branch_) (100. *. r.condition)
    (100. *. r.bit) (100. *. r.total)
