(* Baseline engine: uniformly random test vectors (deterministic PRNG). *)

module Rng = Symbad_image.Rng
module Gov = Symbad_gov.Gov

let generate ?(seed = 1) ?gov ~count model =
  let gov = Gov.get gov in
  (* the pattern allowance is a hard cap: grant what is left, charge it *)
  let count =
    match Gov.patterns_left gov with
    | Some left -> min count left
    | None -> count
  in
  let count = if Gov.out_of_budget gov then 0 else count in
  Gov.charge_patterns gov count;
  let rng = Rng.create seed in
  let widths = Array.of_list (List.map snd model.Model.inputs) in
  List.init count (fun _ ->
      Array.map (fun w -> Rng.int rng (1 lsl w)) widths)
