(* Word-level combinational expressions over inputs and register
   outputs.  Strict widths: binary operators require equal operand widths
   and wrap around; comparisons yield width-1 results. *)

type unop = Not | Neg

type binop = Add | Sub | Mul | And | Or | Xor | Eq | Ult | Ule

type t =
  | Const of Bitvec.t
  | Input of string
  | Reg of string
  | Unop of unop * t
  | Binop of binop * t * t
  | Mux of t * t * t  (* Mux (sel, then_, else_) with sel of width 1 *)
  | Slice of t * int * int  (* Slice (e, hi, lo) *)
  | Concat of t * t  (* Concat (hi, lo) *)

let const ~width value = Const (Bitvec.make ~width value)
let input name = Input name
let reg name = Reg name
let not_ e = Unop (Not, e)
let neg e = Unop (Neg, e)
let add a b = Binop (Add, a, b)
let sub a b = Binop (Sub, a, b)
let mul a b = Binop (Mul, a, b)
let and_ a b = Binop (And, a, b)
let or_ a b = Binop (Or, a, b)
let xor a b = Binop (Xor, a, b)
let eq a b = Binop (Eq, a, b)
let ult a b = Binop (Ult, a, b)
let ule a b = Binop (Ule, a, b)
let mux sel then_ else_ = Mux (sel, then_, else_)
let slice e ~hi ~lo = Slice (e, hi, lo)
let concat hi lo = Concat (hi, lo)

let binop_to_string = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | And -> "&"
  | Or -> "|"
  | Xor -> "^"
  | Eq -> "=="
  | Ult -> "<u"
  | Ule -> "<=u"

(* Width inference, given the declared widths of inputs and registers.
   [infer_width] is the total (result-typed) static elaboration check;
   [width] is the raising wrapper the evaluators use. *)
let ( let* ) = Result.bind

let rec infer_width ~input_width ~reg_width e =
  let recur = infer_width ~input_width ~reg_width in
  match e with
  | Const v -> Ok (Bitvec.width v)
  | Input n -> (
      match input_width n with
      | Some w -> Ok w
      | None -> Error ("undeclared input " ^ n))
  | Reg n -> (
      match reg_width n with
      | Some w -> Ok w
      | None -> Error ("undeclared register " ^ n))
  | Unop (_, a) -> recur a
  | Binop ((Eq | Ult | Ule) as op, a, b) ->
      let* wa = recur a in
      let* wb = recur b in
      if wa <> wb then
        Error
          (Printf.sprintf "comparison %s width mismatch %d vs %d"
             (binop_to_string op) wa wb)
      else Ok 1
  | Binop (op, a, b) ->
      let* wa = recur a in
      let* wb = recur b in
      if wa <> wb then
        Error
          (Printf.sprintf "%s width mismatch %d vs %d" (binop_to_string op) wa
             wb)
      else Ok wa
  | Mux (sel, t, f) ->
      let* ws = recur sel in
      if ws <> 1 then
        Error (Printf.sprintf "mux selector width %d, expected 1" ws)
      else
        let* wt = recur t in
        let* wf = recur f in
        if wt <> wf then
          Error (Printf.sprintf "mux arm width mismatch %d vs %d" wt wf)
        else Ok wt
  | Slice (a, hi, lo) ->
      let* wa = recur a in
      if lo < 0 || hi < lo || hi >= wa then
        Error
          (Printf.sprintf "slice [%d:%d] out of range for width %d" hi lo wa)
      else Ok (hi - lo + 1)
  | Concat (hi, lo) ->
      let* wh = recur hi in
      let* wl = recur lo in
      Ok (wh + wl)

let width ~input_width ~reg_width e =
  match infer_width ~input_width ~reg_width e with
  | Ok w -> w
  | Error msg -> invalid_arg ("Expr.width: " ^ msg)

(* Evaluate with the given environments. *)
let rec eval ~input ~reg e =
  let recur = eval ~input ~reg in
  match e with
  | Const v -> v
  | Input n -> input n
  | Reg n -> reg n
  | Unop (Not, a) -> Bitvec.lognot (recur a)
  | Unop (Neg, a) -> Bitvec.neg (recur a)
  | Binop (Add, a, b) -> Bitvec.add (recur a) (recur b)
  | Binop (Sub, a, b) -> Bitvec.sub (recur a) (recur b)
  | Binop (Mul, a, b) -> Bitvec.mul (recur a) (recur b)
  | Binop (And, a, b) -> Bitvec.logand (recur a) (recur b)
  | Binop (Or, a, b) -> Bitvec.logor (recur a) (recur b)
  | Binop (Xor, a, b) -> Bitvec.logxor (recur a) (recur b)
  | Binop (Eq, a, b) ->
      Bitvec.make ~width:1 (if Bitvec.equal (recur a) (recur b) then 1 else 0)
  | Binop (Ult, a, b) ->
      Bitvec.make ~width:1 (if Bitvec.ult (recur a) (recur b) then 1 else 0)
  | Binop (Ule, a, b) ->
      let va = recur a and vb = recur b in
      Bitvec.make ~width:1 (if not (Bitvec.ult vb va) then 1 else 0)
  | Mux (sel, t, f) ->
      if Bitvec.to_int (recur sel) = 1 then recur t else recur f
  | Slice (a, hi, lo) -> Bitvec.slice (recur a) ~hi ~lo
  | Concat (hi, lo) -> Bitvec.concat (recur hi) (recur lo)

(* All input / register names mentioned. *)
let rec fold_names f acc e =
  match e with
  | Const _ -> acc
  | Input n -> f acc (`Input n)
  | Reg n -> f acc (`Reg n)
  | Unop (_, a) -> fold_names f acc a
  | Binop (_, a, b) -> fold_names f (fold_names f acc a) b
  | Mux (a, b, c) -> fold_names f (fold_names f (fold_names f acc a) b) c
  | Slice (a, _, _) -> fold_names f acc a
  | Concat (a, b) -> fold_names f (fold_names f acc a) b

let rec pp fmt e =
  match e with
  | Const v -> Bitvec.pp fmt v
  | Input n -> Fmt.pf fmt "i:%s" n
  | Reg n -> Fmt.pf fmt "r:%s" n
  | Unop (Not, a) -> Fmt.pf fmt "~(%a)" pp a
  | Unop (Neg, a) -> Fmt.pf fmt "-(%a)" pp a
  | Binop (op, a, b) -> Fmt.pf fmt "(%a %s %a)" pp a (binop_to_string op) pp b
  | Mux (s, t, f) -> Fmt.pf fmt "(%a ? %a : %a)" pp s pp t pp f
  | Slice (a, hi, lo) -> Fmt.pf fmt "%a[%d:%d]" pp a hi lo
  | Concat (a, b) -> Fmt.pf fmt "{%a,%a}" pp a pp b
