(** Word-level combinational expressions over inputs and registers.

    Strict widths: binary arithmetic/logic requires equal operand widths
    and wraps; comparisons yield width-1 results. *)

type unop = Not | Neg
type binop = Add | Sub | Mul | And | Or | Xor | Eq | Ult | Ule

type t =
  | Const of Bitvec.t
  | Input of string
  | Reg of string
  | Unop of unop * t
  | Binop of binop * t * t
  | Mux of t * t * t  (** [Mux (sel, then_, else_)], [sel] of width 1 *)
  | Slice of t * int * int  (** [Slice (e, hi, lo)] *)
  | Concat of t * t  (** [Concat (hi, lo)] *)

(** Constructors. *)

val const : width:int -> int -> t
val input : string -> t
val reg : string -> t
val not_ : t -> t
val neg : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val and_ : t -> t -> t
val or_ : t -> t -> t
val xor : t -> t -> t
val eq : t -> t -> t
val ult : t -> t -> t
(** Unsigned less-than (width-1 result). *)

val ule : t -> t -> t
val mux : t -> t -> t -> t
val slice : t -> hi:int -> lo:int -> t
val concat : t -> t -> t

val binop_to_string : binop -> string

val infer_width :
  input_width:(string -> int option) ->
  reg_width:(string -> int option) ->
  t ->
  (int, string) result
(** Total static width inference: [Ok width], or [Error message] on
    undeclared names or width inconsistencies.  The message names the
    offending operator/name and the widths involved. *)

val width :
  input_width:(string -> int option) ->
  reg_width:(string -> int option) ->
  t ->
  int
(** Static width; raises [Invalid_argument] on undeclared names or width
    inconsistencies.  [width e = infer_width e] with the error raised. *)

val eval : input:(string -> Bitvec.t) -> reg:(string -> Bitvec.t) -> t -> Bitvec.t

val fold_names :
  ('a -> [ `Input of string | `Reg of string ] -> 'a) -> 'a -> t -> 'a

val pp : Format.formatter -> t -> unit
