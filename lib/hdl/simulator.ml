(* Cycle-accurate netlist simulation. *)

type state = (string * Bitvec.t) list
(* register name -> value *)

type t = { netlist : Netlist.t; mutable state : state; mutable cycle : int }

let initial_state nl =
  List.map
    (fun (r : Netlist.register) -> (r.Netlist.name, r.Netlist.init))
    (Netlist.registers nl)

(* Reject malformed netlists up front (make_unchecked can build them):
   a width error surfaces here with the offending register/output named,
   not as an untyped exception mid-evaluation. *)
let check nl =
  List.iter
    (fun (r : Netlist.register) ->
      match Netlist.infer_expr_width nl r.Netlist.next with
      | Ok w when w = r.Netlist.width -> ()
      | Ok w ->
          invalid_arg
            (Printf.sprintf "Simulator: next(%s) width %d, declared %d"
               r.Netlist.name w r.Netlist.width)
      | Error msg ->
          invalid_arg
            (Printf.sprintf "Simulator: next(%s): %s" r.Netlist.name msg))
    (Netlist.registers nl);
  List.iter
    (fun (n, e) ->
      match Netlist.infer_expr_width nl e with
      | Ok _ -> ()
      | Error msg ->
          invalid_arg (Printf.sprintf "Simulator: output %s: %s" n msg))
    (Netlist.outputs nl)

let create nl =
  check nl;
  { netlist = nl; state = initial_state nl; cycle = 0 }

let reset t =
  t.state <- initial_state t.netlist;
  t.cycle <- 0

let state t = t.state
let cycle t = t.cycle

let set_state t state = t.state <- state

let lookup env n =
  match List.assoc_opt n env with
  | Some v -> v
  | None -> invalid_arg ("Simulator: unbound signal " ^ n)

let eval_in ~inputs ~state e =
  Expr.eval ~input:(lookup inputs) ~reg:(lookup state) e

(* Evaluate all outputs for the current state and the given inputs. *)
let outputs t ~inputs =
  List.map
    (fun (n, e) -> (n, eval_in ~inputs ~state:t.state e))
    (Netlist.outputs t.netlist)

let output t ~inputs name =
  match Netlist.find_output t.netlist name with
  | None -> invalid_arg ("Simulator.output: no output " ^ name)
  | Some e -> eval_in ~inputs ~state:t.state e

(* One clock edge: compute every register's next value from the current
   state, then commit simultaneously. *)
let step t ~inputs =
  let next =
    List.map
      (fun (r : Netlist.register) ->
        (r.Netlist.name, eval_in ~inputs ~state:t.state r.Netlist.next))
      (Netlist.registers t.netlist)
  in
  t.state <- next;
  t.cycle <- t.cycle + 1

(* Run a stimulus: list of input valuations, one per cycle; returns the
   outputs observed at each cycle (before the clock edge). *)
let run t stimulus =
  List.map
    (fun inputs ->
      let outs = outputs t ~inputs in
      step t ~inputs;
      outs)
    stimulus
