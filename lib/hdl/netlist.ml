(* Synchronous netlists: inputs, registers with reset values and
   next-state expressions, and named combinational outputs.  This is the
   "RTL SystemC / RTL VHDL" carrier of level 4: the model checker, the
   property-coverage checker and the fault injector all operate on it. *)

type register = { name : string; width : int; init : Bitvec.t; next : Expr.t }

type t = {
  name : string;
  inputs : (string * int) list;
  registers : register list;
  outputs : (string * Expr.t) list;
}

let input_width n nl = List.assoc_opt n nl.inputs

let reg_width n nl =
  List.find_opt (fun (r : register) -> String.equal r.name n) nl.registers
  |> Option.map (fun (r : register) -> r.width)

let infer_expr_width nl e =
  Expr.infer_width
    ~input_width:(fun n -> input_width n nl)
    ~reg_width:(fun n -> reg_width n nl)
    e

let expr_width nl e =
  match infer_expr_width nl e with
  | Ok w -> w
  | Error msg -> invalid_arg ("Expr.width: " ^ msg)

(* Structural elaboration: check name uniqueness, width consistency of
   every next-state and output expression.  Errors carry the netlist and
   the register/output the offending expression belongs to. *)
let validate nl =
  let names = List.map fst nl.inputs @ List.map (fun (r : register) -> r.name) nl.registers in
  let dedup = List.sort_uniq String.compare names in
  if List.length dedup <> List.length names then
    invalid_arg ("Netlist " ^ nl.name ^ ": duplicate signal name");
  List.iter
    (fun (n, w) ->
      if w < 1 || w > Bitvec.max_width then
        invalid_arg ("Netlist " ^ nl.name ^ ": bad width for input " ^ n))
    nl.inputs;
  List.iter
    (fun (r : register) ->
      if Bitvec.width r.init <> r.width then
        invalid_arg ("Netlist " ^ nl.name ^ ": init width of " ^ r.name);
      match infer_expr_width nl r.next with
      | Error msg ->
          invalid_arg
            (Printf.sprintf "Netlist %s: next(%s): %s" nl.name r.name msg)
      | Ok w ->
          if w <> r.width then
            invalid_arg
              (Printf.sprintf "Netlist %s: next(%s) width %d, declared %d"
                 nl.name r.name w r.width))
    nl.registers;
  List.iter
    (fun (n, e) ->
      match infer_expr_width nl e with
      | Error msg ->
          invalid_arg
            (Printf.sprintf "Netlist %s: output %s: %s" nl.name n msg)
      | Ok _ -> ())
    nl.outputs;
  nl

let make ~name ~inputs ~registers ~outputs =
  validate { name; inputs; registers; outputs }

(* No elaboration at all: the carrier for lint fixtures and for
   netlists under repair, where the defects [make] rejects must be
   representable so the lint can diagnose them. *)
let make_unchecked ~name ~inputs ~registers ~outputs =
  { name; inputs; registers; outputs }

let name nl = nl.name
let inputs nl = nl.inputs
let registers nl = nl.registers
let outputs nl = nl.outputs

let find_register nl n =
  List.find_opt (fun (r : register) -> String.equal r.name n) nl.registers

let find_output nl n = List.assoc_opt n nl.outputs

(* Rough gate-count proxy used as the area estimate for FPGA mapping. *)
let rec expr_cost = function
  | Expr.Const _ | Expr.Input _ | Expr.Reg _ -> 0
  | Expr.Unop (_, a) -> 1 + expr_cost a
  | Expr.Binop (Expr.Mul, a, b) -> 16 + expr_cost a + expr_cost b
  | Expr.Binop (_, a, b) -> 2 + expr_cost a + expr_cost b
  | Expr.Mux (a, b, c) -> 2 + expr_cost a + expr_cost b + expr_cost c
  | Expr.Slice (a, _, _) -> expr_cost a
  | Expr.Concat (a, b) -> expr_cost a + expr_cost b

let area nl =
  List.fold_left (fun acc (r : register) -> acc + r.width + expr_cost r.next) 0 nl.registers
  + List.fold_left (fun acc (_, e) -> acc + expr_cost e) 0 nl.outputs

let pp fmt nl =
  Fmt.pf fmt "netlist %s@." nl.name;
  List.iter (fun (n, w) -> Fmt.pf fmt "  input %s : %d@." n w) nl.inputs;
  List.iter
    (fun (r : register) ->
      Fmt.pf fmt "  reg %s : %d init %a next %a@." r.name r.width Bitvec.pp
        r.init Expr.pp r.next)
    nl.registers;
  List.iter (fun (n, e) -> Fmt.pf fmt "  output %s = %a@." n Expr.pp e)
    nl.outputs
