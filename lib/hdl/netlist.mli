(** Synchronous netlists — the RTL carrier of level 4.

    A netlist has inputs, registers (reset value + next-state
    expression) and named combinational outputs.  The model checker, the
    property-coverage checker and the fault injector all operate on this
    representation. *)

type register = {
  name : string;
  width : int;
  init : Bitvec.t;  (** reset value *)
  next : Expr.t;  (** next-state function *)
}

type t

val make :
  name:string ->
  inputs:(string * int) list ->
  registers:register list ->
  outputs:(string * Expr.t) list ->
  t
(** Elaborates and validates: unique names, consistent widths everywhere.
    Raises [Invalid_argument] on violations; the message names the
    register or output whose expression failed. *)

val make_unchecked :
  name:string ->
  inputs:(string * int) list ->
  registers:register list ->
  outputs:(string * Expr.t) list ->
  t
(** Builds the netlist with {e no} elaboration.  Defective netlists
    must be representable so [Symbad_lint] can diagnose them; everything
    else should use {!make}. *)

val name : t -> string
val inputs : t -> (string * int) list
val registers : t -> register list
val outputs : t -> (string * Expr.t) list

val input_width : string -> t -> int option
val reg_width : string -> t -> int option

val infer_expr_width : t -> Expr.t -> (int, string) result
(** Total width inference for an expression in this netlist's context
    (see {!Expr.infer_width}). *)

val expr_width : t -> Expr.t -> int
(** Width of an expression in this netlist's context.  Raises
    [Invalid_argument] where {!infer_expr_width} returns [Error]. *)

val find_register : t -> string -> register option
val find_output : t -> string -> Expr.t option

val area : t -> int
(** Gate-count proxy used as the FPGA-mapping area estimate. *)

val pp : Format.formatter -> t -> unit
