(* Triple modular redundancy as a netlist transformation.

   [triplicate] keeps three lock-stepped copies of every register and
   votes the outputs bitwise; a single upset copy is outvoted — masked —
   and its per-copy disagreement flag tells the reconfiguration
   controller exactly which resource area to repair, without touching
   the two healthy copies.  [voter] is the majority element itself, as a
   standalone combinational netlist whose masking contract the model
   checker discharges (see [Symbad_resil.Masking]).

   The majority function is the bitwise [maj(a,b,c) = ab | ac | bc]:
   each output bit follows the two copies that agree, so corrupting any
   single copy arbitrarily never moves the voted value. *)

let copy_suffix i = Printf.sprintf "__tmr%d" i
let copy_reg i name = name ^ copy_suffix i

let majority a b c =
  Expr.or_ (Expr.or_ (Expr.and_ a b) (Expr.and_ a c)) (Expr.and_ b c)

(* Redirect every register read to copy [i]; inputs are shared. *)
let rec rename_regs i = function
  | (Expr.Const _ | Expr.Input _) as e -> e
  | Expr.Reg n -> Expr.Reg (copy_reg i n)
  | Expr.Unop (op, a) -> Expr.Unop (op, rename_regs i a)
  | Expr.Binop (op, a, b) ->
      Expr.Binop (op, rename_regs i a, rename_regs i b)
  | Expr.Mux (s, t, e) ->
      Expr.Mux (rename_regs i s, rename_regs i t, rename_regs i e)
  | Expr.Slice (a, hi, lo) -> Expr.Slice (rename_regs i a, hi, lo)
  | Expr.Concat (a, b) -> Expr.Concat (rename_regs i a, rename_regs i b)

let reduce op = function
  | [] -> invalid_arg "Tmr.reduce: empty"
  | e :: es -> List.fold_left op e es

let implies p q = Expr.or_ (Expr.not_ p) q

(* The voted outputs and the per-copy disagreement flags of a
   triplicated netlist — shared between [triplicate] (which emits them)
   and [triplication_properties] (which constrains them). *)
let voted_outputs nl =
  List.map
    (fun (n, e) ->
      (n, majority (rename_regs 0 e) (rename_regs 1 e) (rename_regs 2 e)))
    (Netlist.outputs nl)

let disagree_flag nl voted i =
  reduce Expr.or_
    (List.map
       (fun (n, e) ->
         Expr.not_ (Expr.eq (rename_regs i e) (List.assoc n voted)))
       (Netlist.outputs nl))

let triplicate nl =
  if Netlist.outputs nl = [] then
    invalid_arg "Tmr.triplicate: netlist has no outputs to vote";
  let registers =
    List.concat_map
      (fun (r : Netlist.register) ->
        List.init 3 (fun i ->
            {
              Netlist.name = copy_reg i r.Netlist.name;
              width = r.Netlist.width;
              init = r.Netlist.init;
              next = rename_regs i r.Netlist.next;
            }))
      (Netlist.registers nl)
  in
  let voted = voted_outputs nl in
  let d i = disagree_flag nl voted i in
  let d0 = d 0 and d1 = d 1 and d2 = d 2 in
  Netlist.make
    ~name:(Netlist.name nl ^ "_tmr")
    ~inputs:(Netlist.inputs nl) ~registers
    ~outputs:
      (voted
      @ [
          ("tmr_disagree0", d0);
          ("tmr_disagree1", d1);
          ("tmr_disagree2", d2);
          ("tmr_disagree", Expr.or_ (Expr.or_ d0 d1) d2);
        ])

(* Lock-step invariant of a triplicated netlist: the three register
   banks stay equal (1-inductive: equal states under shared inputs step
   to equal states), hence every disagreement flag stays low and the
   voted outputs equal copy 0's.  One conjunction so the whole contract
   is inductive at once. *)
let triplication_properties nl =
  let regs_agree =
    List.concat_map
      (fun (r : Netlist.register) ->
        let c i = Expr.Reg (copy_reg i r.Netlist.name) in
        [ Expr.eq (c 0) (c 1); Expr.eq (c 0) (c 2) ])
      (Netlist.registers nl)
  in
  let voted = voted_outputs nl in
  let flags_low =
    List.init 3 (fun i -> Expr.not_ (disagree_flag nl voted i))
  in
  let voted_is_copy0 =
    List.map
      (fun (n, e) -> Expr.eq (List.assoc n voted) (rename_regs 0 e))
      (Netlist.outputs nl)
  in
  [
    ( "tmr.lockstep",
      reduce Expr.and_ (regs_agree @ flags_low @ voted_is_copy0) );
  ]

(* The standalone majority voter: three redundant result words in,
   the voted word and per-copy disagreement flags out. *)
let voter ?(width = 8) () =
  if width < 1 then invalid_arg "Tmr.voter: width";
  let a = Expr.input "a" and b = Expr.input "b" and c = Expr.input "c" in
  let voted = majority a b c in
  let dis x = Expr.not_ (Expr.eq x voted) in
  Netlist.make
    ~name:(Printf.sprintf "tmr_voter%d" width)
    ~inputs:[ ("a", width); ("b", width); ("c", width) ]
    ~registers:[]
    ~outputs:
      [
        ("voted", voted);
        ("disagree_a", dis a);
        ("disagree_b", dis b);
        ("disagree_c", dis c);
        ("disagree_any", Expr.or_ (Expr.or_ (dis a) (dis b)) (dis c));
      ]

(* The voter's masking contract, as named width-1 formulas over the
   voter's inputs (voted/disagree inlined so they double as lint
   property inputs and as [Symbad_mc.Prop] bodies):
   - a single corrupted copy never changes the voted output,
   - agreement raises no flag,
   - a lone dissenter raises exactly its own flag. *)
let voter_properties () =
  let a = Expr.input "a" and b = Expr.input "b" and c = Expr.input "c" in
  let voted = majority a b c in
  let dis x = Expr.not_ (Expr.eq x voted) in
  let eq = Expr.eq and and_ = Expr.and_ and not_ = Expr.not_ in
  let lone_dissenter x y z =
    (* x disagrees with the agreeing pair y = z *)
    and_ (eq y z) (not_ (eq x y))
  in
  [
    (* masking: whatever a single corrupted copy drives, the voted
       output follows the agreeing pair *)
    ("tmr.mask_corrupt_a", implies (eq b c) (eq voted b));
    ("tmr.mask_corrupt_b", implies (eq a c) (eq voted a));
    ("tmr.mask_corrupt_c", implies (eq a b) (eq voted a));
    (* no false alarms: full agreement keeps every flag low *)
    ( "tmr.no_false_alarm",
      implies
        (and_ (eq a b) (eq b c))
        (and_
           (not_ (dis a))
           (and_ (not_ (dis b)) (not_ (dis c)))) );
    (* exact diagnosis: a lone dissenter raises its own flag and only
       its own — the targeted-repair signal *)
    ( "tmr.diagnose_a",
      implies (lone_dissenter a b c)
        (and_ (dis a) (and_ (not_ (dis b)) (not_ (dis c)))) );
    ( "tmr.diagnose_b",
      implies (lone_dissenter b a c)
        (and_ (dis b) (and_ (not_ (dis a)) (not_ (dis c)))) );
    ( "tmr.diagnose_c",
      implies (lone_dissenter c a b)
        (and_ (dis c) (and_ (not_ (dis a)) (not_ (dis b)))) );
  ]
