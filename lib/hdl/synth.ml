(* A small behavioural-synthesis front end.

   "The complete task of mapping the SystemC to RTL, a.k.a behavioral
   synthesis, is much farther the purpose of Vista" — likewise here, but
   the predefined-IP route still needs a way to turn small dataflow
   descriptions into netlists.  [combinational] elaborates a list of SSA
   definitions into a purely combinational netlist; [registered] wraps
   the same dataflow with input and output registers (a 2-stage design
   suitable for bus-clock domains); both validate widths through the
   netlist elaborator. *)

type dataflow = {
  df_name : string;
  df_inputs : (string * int) list;
  df_defs : (string * Expr.t) list;
      (* SSA: each definition may reference inputs and earlier defs *)
  df_outputs : (string * string) list;  (* output name -> def or input *)
}

(* Substitute defs (referenced via [Expr.Reg]) into one expression,
   yielding an expression over inputs only.  [stack] tracks the defs
   currently being expanded: a cyclic definition (a combinational loop)
   is a clear error instead of a stack overflow. *)
let rec inline ?(stack = []) defs (e : Expr.t) =
  match e with
  | Expr.Const _ | Expr.Input _ -> e
  | Expr.Reg n -> (
      if List.mem n stack then
        invalid_arg
          ("Synth: combinational loop through def "
          ^ String.concat " -> " (List.rev (n :: stack)));
      match List.assoc_opt n defs with
      | Some def -> inline ~stack:(n :: stack) defs def
      | None -> invalid_arg ("Synth: reference to unknown def " ^ n))
  | Expr.Unop (op, a) -> Expr.Unop (op, inline ~stack defs a)
  | Expr.Binop (op, a, b) ->
      Expr.Binop (op, inline ~stack defs a, inline ~stack defs b)
  | Expr.Mux (s, t, f) ->
      Expr.Mux (inline ~stack defs s, inline ~stack defs t, inline ~stack defs f)
  | Expr.Slice (a, hi, lo) -> Expr.Slice (inline ~stack defs a, hi, lo)
  | Expr.Concat (a, b) ->
      Expr.Concat (inline ~stack defs a, inline ~stack defs b)

let resolve_output df (out_name, source) =
  if List.mem_assoc source df.df_inputs then (out_name, Expr.Input source)
  else
    match List.assoc_opt source df.df_defs with
    | Some _ -> (out_name, inline df.df_defs (Expr.Reg source))
    | None ->
        invalid_arg
          (Printf.sprintf "Synth: output %s references unknown %s" out_name
             source)

(* Purely combinational elaboration: defs are inlined into the outputs. *)
let combinational df =
  Netlist.make ~name:df.df_name ~inputs:df.df_inputs ~registers:[]
    ~outputs:(List.map (resolve_output df) df.df_outputs)

(* Registered elaboration: inputs are sampled into registers, the
   dataflow computes from the sampled values, and results are registered
   again — output latency two cycles, one transaction in flight. *)
let registered df =
  let comb = combinational df in
  let in_reg n = n ^ "$q" in
  (* rewrite the combinational outputs to read the sampled inputs *)
  let rec sample (e : Expr.t) =
    match e with
    | Expr.Const _ -> e
    | Expr.Input n -> Expr.Reg (in_reg n)
    | Expr.Reg _ -> e
    | Expr.Unop (op, a) -> Expr.Unop (op, sample a)
    | Expr.Binop (op, a, b) -> Expr.Binop (op, sample a, sample b)
    | Expr.Mux (s, t, f) -> Expr.Mux (sample s, sample t, sample f)
    | Expr.Slice (a, hi, lo) -> Expr.Slice (sample a, hi, lo)
    | Expr.Concat (a, b) -> Expr.Concat (sample a, sample b)
  in
  let input_registers =
    List.map
      (fun (n, w) ->
        {
          Netlist.name = in_reg n;
          width = w;
          init = Bitvec.zero ~width:w;
          next = Expr.Input n;
        })
      df.df_inputs
  in
  let output_registers =
    List.map
      (fun (n, e) ->
        let w = Netlist.expr_width comb e in
        {
          Netlist.name = n ^ "$q";
          width = w;
          init = Bitvec.zero ~width:w;
          next = sample e;
        })
      (Netlist.outputs comb)
  in
  Netlist.make ~name:(df.df_name ^ "_reg") ~inputs:df.df_inputs
    ~registers:(input_registers @ output_registers)
    ~outputs:
      (List.map (fun (n, _) -> (n, Expr.Reg (n ^ "$q"))) (Netlist.outputs comb))

(* Equivalence check between the synthesised combinational netlist and a
   reference OCaml function, by SAT: UNSAT of "outputs differ" proves
   them equal on the whole input space... for a reference that is itself
   a netlist.  For an OCaml oracle we exhaustively simulate when the
   input space is small, which is the honest bounded check. *)
let equivalent_to_oracle ?(max_input_bits = 16) nl oracle =
  let inputs = Netlist.inputs nl in
  let bits = List.fold_left (fun a (_, w) -> a + w) 0 inputs in
  if bits > max_input_bits then None
  else begin
    let sim = Simulator.create nl in
    let ok = ref true in
    for idx = 0 to (1 lsl bits) - 1 do
      let rec split idx = function
        | [] -> []
        | (n, w) :: rest ->
            (n, Bitvec.make ~width:w (idx land ((1 lsl w) - 1)))
            :: split (idx lsr w) rest
      in
      let valuation = split idx inputs in
      let got =
        List.map
          (fun (n, _) ->
            (n, Bitvec.to_int (Simulator.output sim ~inputs:valuation n)))
          (Netlist.outputs nl)
      in
      let want = oracle (List.map (fun (n, v) -> (n, Bitvec.to_int v)) valuation) in
      if got <> want then ok := false
    done;
    Some !ok
  end
