(** Triple modular redundancy as a netlist transformation.

    {!triplicate} keeps three lock-stepped copies of every register and
    votes every output bitwise with [maj(a,b,c) = ab | ac | bc]; a
    single upset copy is outvoted — {e masked} — and the per-copy
    disagreement flags tell the reconfiguration controller exactly
    which resource area to repair.  {!voter} is the majority element as
    a standalone combinational netlist; {!voter_properties} is its
    masking contract, discharged by the model checker (see
    [Symbad_resil.Masking]) and usable directly as lint property
    input. *)

val majority : Expr.t -> Expr.t -> Expr.t -> Expr.t
(** Bitwise 2-of-3 majority. *)

val copy_reg : int -> string -> string
(** Register name of copy [i] (0..2) in a triplicated netlist:
    [name ^ "__tmr" ^ i]. *)

val triplicate : Netlist.t -> Netlist.t
(** [triplicate nl] is [nl] with every register triplicated
    ({!copy_reg} naming), every output replaced by the bitwise majority
    of the three copies, and four extra width-1 outputs:
    [tmr_disagree0/1/2] (copy [i] disagrees with the vote on some
    output) and [tmr_disagree] (their disjunction).  Inputs are shared
    by the copies.  Raises [Invalid_argument] on a netlist without
    outputs. *)

val triplication_properties : Netlist.t -> (string * Expr.t) list
(** The lock-step invariant of [triplicate nl], phrased over the
    {e triplicated} netlist's signals: the three register banks stay
    equal, every disagreement flag stays low and the voted outputs
    equal copy 0's — one conjunction, 1-inductive. *)

val voter : ?width:int -> unit -> Netlist.t
(** The standalone majority voter over three [width]-bit (default 8)
    inputs [a]/[b]/[c]: outputs [voted], per-copy [disagree_a/b/c] and
    [disagree_any]. *)

val voter_properties : unit -> (string * Expr.t) list
(** The voter's masking contract as named width-1 formulas over the
    voter's inputs: a single corrupted copy never changes the voted
    output; full agreement raises no flag; a lone dissenter raises
    exactly its own flag (the targeted-repair signal). *)
