(* Seeded-defect fixtures: for every rule, one target that must fire
   it and one clean counterpart that must not.  Built with
   [Netlist.make_unchecked] where the defect is one [Netlist.make]
   would reject — representing such netlists is the whole point of the
   lint.  The [demo] netlist combines the three acceptance defects
   (combinational loop, width mismatch, multiply-driven net) for the
   CLI walkthrough. *)

module Expr = Symbad_hdl.Expr
module Bitvec = Symbad_hdl.Bitvec
module Netlist = Symbad_hdl.Netlist
module Ast = Symbad_symbc.Ast
module Ci = Symbad_symbc.Config_info
module Cfg = Symbad_symbc.Cfg

let reg name width init next = { Netlist.name; width; init; next }
let z w = Bitvec.zero ~width:w
let c ~width v = Expr.const ~width v

(* --- netlist fixtures --------------------------------------------------- *)

(* Zero-extend by one bit: the explicit-widening idiom net.range asks
   for — the widened add provably cannot wrap, and the slice back down
   is a visible (intentional) truncation, not an arithmetic surprise. *)
let widening_add a b ~width =
  let zext e = Expr.concat (c ~width:1 0) e in
  Expr.slice (Expr.add (zext a) (zext b)) ~hi:(width - 1) ~lo:0

(* A well-formed 4-bit accumulator every clean variant derives from.
   The modulo-16 accumulation is written with the explicit-widening
   idiom so the semantic rules see the truncation is deliberate. *)
let clean =
  let acc = Expr.reg "acc" and en = Expr.input "en" and d = Expr.input "d" in
  Netlist.make ~name:"seed_clean"
    ~inputs:[ ("en", 1); ("d", 4) ]
    ~registers:
      [ reg "acc" 4 (z 4) (Expr.mux en (widening_add acc d ~width:4) acc) ]
    ~outputs:[ ("acc", acc) ]

(* net.width: 8-bit next-state expression into a 4-bit register. *)
let width_mismatch =
  let acc = Expr.reg "acc" in
  Netlist.make_unchecked ~name:"seed_width"
    ~inputs:[ ("d", 8) ]
    ~registers:
      [ reg "acc" 4 (z 4) (Expr.add (Expr.concat (c ~width:4 0) acc) (Expr.input "d")) ]
    ~outputs:[ ("acc", acc) ]

(* net.undriven: output reads a net nothing drives. *)
let undriven =
  Netlist.make_unchecked ~name:"seed_undriven"
    ~inputs:[ ("d", 4) ]
    ~registers:[]
    ~outputs:[ ("q", Expr.add (Expr.input "d") (Expr.reg "ghost")) ]

(* net.multi-driven: two registers share one name. *)
let multi_driven =
  Netlist.make_unchecked ~name:"seed_multi"
    ~inputs:[ ("d", 4) ]
    ~registers:
      [
        reg "x" 4 (z 4) (Expr.input "d");
        reg "x" 4 (z 4) (Expr.not_ (Expr.input "d"));
      ]
    ~outputs:[ ("x", Expr.reg "x") ]

(* net.comb-loop: two combinational nets feed each other. *)
let comb_loop =
  Netlist.make_unchecked ~name:"seed_loop"
    ~inputs:[ ("d", 1) ]
    ~registers:[]
    ~outputs:
      [
        ("a", Expr.and_ (Expr.input "d") (Expr.reg "b"));
        ("b", Expr.not_ (Expr.reg "a"));
      ]

(* net.unused: an input and a register outside every cone. *)
let unused =
  let acc = Expr.reg "acc" in
  Netlist.make ~name:"seed_unused"
    ~inputs:[ ("d", 4); ("nc", 1) ]
    ~registers:
      [
        reg "acc" 4 (z 4) (Expr.add acc (Expr.input "d"));
        reg "orphan" 4 (z 4) (Expr.reg "orphan");
      ]
    ~outputs:[ ("acc", acc) ]

(* net.dead-logic: a constant mux selector. *)
let dead_logic =
  let d = Expr.input "d" in
  Netlist.make ~name:"seed_dead"
    ~inputs:[ ("d", 4) ]
    ~registers:[]
    ~outputs:[ ("q", Expr.mux (c ~width:1 1) d (Expr.not_ d)) ]

(* net.no-reset: an explicit rst input that one register ignores. *)
let no_reset =
  let a = Expr.reg "a" and b = Expr.reg "b" and rst = Expr.input "rst" in
  let d = Expr.input "d" in
  Netlist.make ~name:"seed_noreset"
    ~inputs:[ ("rst", 1); ("d", 4) ]
    ~registers:
      [
        reg "a" 4 (z 4) (Expr.mux rst (z 4 |> fun v -> Expr.Const v) d);
        reg "b" 4 (z 4) (Expr.add b d);
      ]
    ~outputs:[ ("a", a); ("b", b) ]

(* net.x-prop: register [sh] ignores the explicit reset, so it is X
   after reset, and output [q] exposes it.  Register [a] is covered. *)
let x_prop =
  let a = Expr.reg "a" and sh = Expr.reg "sh" in
  let rst = Expr.input "rst" and d = Expr.input "d" in
  Netlist.make ~name:"seed_xprop"
    ~inputs:[ ("rst", 1); ("d", 4) ]
    ~registers:
      [
        reg "a" 4 (z 4) (Expr.mux rst (c ~width:4 0) d);
        reg "sh" 4 (z 4) d;
      ]
    ~outputs:[ ("a", a); ("q", sh) ]

(* net.range: an unguarded 4-bit accumulation — the abstract value of
   [acc] widens to the full range, so the add can wrap. *)
let range =
  let acc = Expr.reg "acc" and d = Expr.input "d" in
  Netlist.make ~name:"seed_range"
    ~inputs:[ ("d", 4) ]
    ~registers:[ reg "acc" 4 (z 4) (Expr.add acc d) ]
    ~outputs:[ ("acc", acc) ]

(* net.unreachable-state: [st] toggles between 0 and 2 (xor with 2),
   so the state test against 5 is dead.  Xor is exact over small value
   sets, which keeps the reachable set {0, 2} precise. *)
let unreachable_state =
  let st = Expr.reg "st" in
  Netlist.make ~name:"seed_unreach" ~inputs:[]
    ~registers:[ reg "st" 3 (z 3) (Expr.xor st (c ~width:3 2)) ]
    ~outputs:[ ("dead", Expr.eq st (c ~width:3 5)) ]

(* net.const-reg: [k] reloads itself, so it provably holds its reset
   value forever. *)
let const_reg =
  let k = Expr.reg "k" and d = Expr.input "d" in
  Netlist.make ~name:"seed_const"
    ~inputs:[ ("d", 4) ]
    ~registers:[ reg "k" 4 (Bitvec.make ~width:4 5) k ]
    ~outputs:[ ("k", k); ("masked", Expr.and_ k d) ]

(* The escalation fixture: two net.range warnings with opposite
   verdicts.  The accumulator genuinely wraps (the model checker finds
   a two-frame counterexample — disproved, promoted to error); the
   output [s = d + ~d] is the all-ones constant 15 at width 4, so its
   no-wrap obligation is proved and the warning demotes to info. *)
let escalation =
  let acc = Expr.reg "acc" and d = Expr.input "d" in
  Netlist.make ~name:"seed_escalate"
    ~inputs:[ ("d", 4) ]
    ~registers:[ reg "acc" 4 (z 4) (Expr.add acc d) ]
    ~outputs:[ ("acc", acc); ("s", Expr.add d (Expr.not_ d)) ]

(* The acceptance demo: a combinational loop, a width mismatch and a
   multiply-driven net in one netlist. *)
let demo =
  let acc = Expr.reg "acc" in
  Netlist.make_unchecked ~name:"demo"
    ~inputs:[ ("en", 1); ("d", 8) ]
    ~registers:
      [
        (* width mismatch: 8-bit d into the 4-bit acc *)
        reg "acc" 4 (z 4) (Expr.input "d");
        (* multiply-driven: second declaration of acc *)
        reg "acc" 4 (z 4) (Expr.reg "acc");
      ]
    ~outputs:
      [
        ("acc", acc);
        (* combinational loop: p and q feed each other *)
        ("p", Expr.and_ (Expr.input "en") (Expr.reg "q"));
        ("q", Expr.not_ (Expr.reg "p"));
      ]

let fixtures =
  [
    ("net.width", width_mismatch);
    ("net.undriven", undriven);
    ("net.multi-driven", multi_driven);
    ("net.comb-loop", comb_loop);
    ("net.unused", unused);
    ("net.dead-logic", dead_logic);
    ("net.no-reset", no_reset);
    ("net.x-prop", x_prop);
    ("net.range", range);
    ("net.unreachable-state", unreachable_state);
    ("net.const-reg", const_reg);
  ]

(* --- program fixtures --------------------------------------------------- *)

let ci =
  Ci.make
    ~fpga_functions:[ "edge"; "erosion" ]
    ~configurations:[ ("c_edge", [ "edge" ]); ("c_erosion", [ "erosion" ]) ]
    ()

let program_clean =
  [ Ast.reconfig "c_edge"; Ast.call "edge"; Ast.reconfig "c_erosion";
    Ast.call "erosion" ]

(* cfg.never-loaded: the call's context is loaded on no path. *)
let program_never_loaded = [ Ast.reconfig "c_erosion"; Ast.call "edge" ]

(* cfg.maybe-unloaded: loaded on one branch only — dynamic SymbC's
   counterexample direction, a warning here. *)
let program_maybe_unloaded =
  [ Ast.if_ [ Ast.reconfig "c_edge" ] []; Ast.call "edge" ]

(* cfg.unknown-config. *)
let program_unknown_config = [ Ast.reconfig "c_typo"; Ast.call "edge" ]

(* cfg.redundant-config: back-to-back loads of the same context. *)
let program_redundant =
  [ Ast.reconfig "c_edge"; Ast.reconfig "c_edge"; Ast.call "edge" ]

(* cfg.unreachable-config: [Ast.build] cannot produce unreachable
   nodes (branches are nondeterministic), so the fixture is a
   hand-built CFG with an orphaned reconfiguration edge. *)
let cfg_unreachable =
  {
    Cfg.entry = 0;
    exit_ = 1;
    nnodes = 4;
    edges =
      [
        { Cfg.src = 0; dst = 1; action = Cfg.Nop };
        { Cfg.src = 2; dst = 3; action = Cfg.Reconfig "c_edge" };
      ];
  }

let program_fixtures =
  [
    ("cfg.never-loaded", program_never_loaded);
    ("cfg.maybe-unloaded", program_maybe_unloaded);
    ("cfg.unknown-config", program_unknown_config);
    ("cfg.redundant-config", program_redundant);
  ]

(* --- tenant fixtures ---------------------------------------------------- *)

(* sched.context-conflict: each tenant is solo-clean, but interleaved
   on the one fabric either can reload between the other's
   reconfiguration and call. *)
let tenants_conflict =
  [
    ("edge-tenant", [ Ast.reconfig "c_edge"; Ast.call "edge" ]);
    ("erosion-tenant", [ Ast.reconfig "c_erosion"; Ast.call "erosion" ]);
  ]

(* Clean: both tenants use the same configuration, so any interleaving
   leaves a providing context loaded. *)
let tenants_clean =
  [
    ("edge-a", [ Ast.reconfig "c_edge"; Ast.call "edge" ]);
    ("edge-b", [ Ast.reconfig "c_edge"; Ast.call "edge" ]);
  ]

(* sched.wcrt: a reconfiguration inside a nondeterministic loop has no
   static bound. *)
let tenant_wcrt_unbounded =
  [
    ( "looping-tenant",
      [ Ast.while_ [ Ast.reconfig "c_edge"; Ast.call "edge" ] ] );
  ]

(* Bounded: two reconfigurations on the longest path — 2 ms at the
   default cost, admitted iff the deadline covers it. *)
let tenant_wcrt_straight = [ ("straight-tenant", program_clean) ]
