(* Seeded-defect fixtures: for every rule, one target that must fire
   it and one clean counterpart that must not.  Built with
   [Netlist.make_unchecked] where the defect is one [Netlist.make]
   would reject — representing such netlists is the whole point of the
   lint.  The [demo] netlist combines the three acceptance defects
   (combinational loop, width mismatch, multiply-driven net) for the
   CLI walkthrough. *)

module Expr = Symbad_hdl.Expr
module Bitvec = Symbad_hdl.Bitvec
module Netlist = Symbad_hdl.Netlist
module Ast = Symbad_symbc.Ast
module Ci = Symbad_symbc.Config_info
module Cfg = Symbad_symbc.Cfg

let reg name width init next = { Netlist.name; width; init; next }
let z w = Bitvec.zero ~width:w
let c ~width v = Expr.const ~width v

(* --- netlist fixtures --------------------------------------------------- *)

(* A well-formed 4-bit accumulator every clean variant derives from. *)
let clean =
  let acc = Expr.reg "acc" and en = Expr.input "en" and d = Expr.input "d" in
  Netlist.make ~name:"seed_clean"
    ~inputs:[ ("en", 1); ("d", 4) ]
    ~registers:
      [ reg "acc" 4 (z 4) (Expr.mux en (Expr.add acc d) acc) ]
    ~outputs:[ ("acc", acc) ]

(* net.width: 8-bit next-state expression into a 4-bit register. *)
let width_mismatch =
  let acc = Expr.reg "acc" in
  Netlist.make_unchecked ~name:"seed_width"
    ~inputs:[ ("d", 8) ]
    ~registers:
      [ reg "acc" 4 (z 4) (Expr.add (Expr.concat (c ~width:4 0) acc) (Expr.input "d")) ]
    ~outputs:[ ("acc", acc) ]

(* net.undriven: output reads a net nothing drives. *)
let undriven =
  Netlist.make_unchecked ~name:"seed_undriven"
    ~inputs:[ ("d", 4) ]
    ~registers:[]
    ~outputs:[ ("q", Expr.add (Expr.input "d") (Expr.reg "ghost")) ]

(* net.multi-driven: two registers share one name. *)
let multi_driven =
  Netlist.make_unchecked ~name:"seed_multi"
    ~inputs:[ ("d", 4) ]
    ~registers:
      [
        reg "x" 4 (z 4) (Expr.input "d");
        reg "x" 4 (z 4) (Expr.not_ (Expr.input "d"));
      ]
    ~outputs:[ ("x", Expr.reg "x") ]

(* net.comb-loop: two combinational nets feed each other. *)
let comb_loop =
  Netlist.make_unchecked ~name:"seed_loop"
    ~inputs:[ ("d", 1) ]
    ~registers:[]
    ~outputs:
      [
        ("a", Expr.and_ (Expr.input "d") (Expr.reg "b"));
        ("b", Expr.not_ (Expr.reg "a"));
      ]

(* net.unused: an input and a register outside every cone. *)
let unused =
  let acc = Expr.reg "acc" in
  Netlist.make ~name:"seed_unused"
    ~inputs:[ ("d", 4); ("nc", 1) ]
    ~registers:
      [
        reg "acc" 4 (z 4) (Expr.add acc (Expr.input "d"));
        reg "orphan" 4 (z 4) (Expr.reg "orphan");
      ]
    ~outputs:[ ("acc", acc) ]

(* net.dead-logic: a constant mux selector. *)
let dead_logic =
  let d = Expr.input "d" in
  Netlist.make ~name:"seed_dead"
    ~inputs:[ ("d", 4) ]
    ~registers:[]
    ~outputs:[ ("q", Expr.mux (c ~width:1 1) d (Expr.not_ d)) ]

(* net.no-reset: an explicit rst input that one register ignores. *)
let no_reset =
  let a = Expr.reg "a" and b = Expr.reg "b" and rst = Expr.input "rst" in
  let d = Expr.input "d" in
  Netlist.make ~name:"seed_noreset"
    ~inputs:[ ("rst", 1); ("d", 4) ]
    ~registers:
      [
        reg "a" 4 (z 4) (Expr.mux rst (z 4 |> fun v -> Expr.Const v) d);
        reg "b" 4 (z 4) (Expr.add b d);
      ]
    ~outputs:[ ("a", a); ("b", b) ]

(* The acceptance demo: a combinational loop, a width mismatch and a
   multiply-driven net in one netlist. *)
let demo =
  let acc = Expr.reg "acc" in
  Netlist.make_unchecked ~name:"demo"
    ~inputs:[ ("en", 1); ("d", 8) ]
    ~registers:
      [
        (* width mismatch: 8-bit d into the 4-bit acc *)
        reg "acc" 4 (z 4) (Expr.input "d");
        (* multiply-driven: second declaration of acc *)
        reg "acc" 4 (z 4) (Expr.reg "acc");
      ]
    ~outputs:
      [
        ("acc", acc);
        (* combinational loop: p and q feed each other *)
        ("p", Expr.and_ (Expr.input "en") (Expr.reg "q"));
        ("q", Expr.not_ (Expr.reg "p"));
      ]

let fixtures =
  [
    ("net.width", width_mismatch);
    ("net.undriven", undriven);
    ("net.multi-driven", multi_driven);
    ("net.comb-loop", comb_loop);
    ("net.unused", unused);
    ("net.dead-logic", dead_logic);
    ("net.no-reset", no_reset);
  ]

(* --- program fixtures --------------------------------------------------- *)

let ci =
  Ci.make
    ~fpga_functions:[ "edge"; "erosion" ]
    ~configurations:[ ("c_edge", [ "edge" ]); ("c_erosion", [ "erosion" ]) ]
    ()

let program_clean =
  [ Ast.reconfig "c_edge"; Ast.call "edge"; Ast.reconfig "c_erosion";
    Ast.call "erosion" ]

(* cfg.never-loaded: the call's context is loaded on no path. *)
let program_never_loaded = [ Ast.reconfig "c_erosion"; Ast.call "edge" ]

(* cfg.maybe-unloaded: loaded on one branch only — dynamic SymbC's
   counterexample direction, a warning here. *)
let program_maybe_unloaded =
  [ Ast.if_ [ Ast.reconfig "c_edge" ] []; Ast.call "edge" ]

(* cfg.unknown-config. *)
let program_unknown_config = [ Ast.reconfig "c_typo"; Ast.call "edge" ]

(* cfg.redundant-config: back-to-back loads of the same context. *)
let program_redundant =
  [ Ast.reconfig "c_edge"; Ast.reconfig "c_edge"; Ast.call "edge" ]

(* cfg.unreachable-config: [Ast.build] cannot produce unreachable
   nodes (branches are nondeterministic), so the fixture is a
   hand-built CFG with an orphaned reconfiguration edge. *)
let cfg_unreachable =
  {
    Cfg.entry = 0;
    exit_ = 1;
    nnodes = 4;
    edges =
      [
        { Cfg.src = 0; dst = 1; action = Cfg.Nop };
        { Cfg.src = 2; dst = 3; action = Cfg.Reconfig "c_edge" };
      ];
  }

let program_fixtures =
  [
    ("cfg.never-loaded", program_never_loaded);
    ("cfg.maybe-unloaded", program_maybe_unloaded);
    ("cfg.unknown-config", program_unknown_config);
    ("cfg.redundant-config", program_redundant);
  ]
