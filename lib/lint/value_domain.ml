(* The abstract value lattice: small exact value sets (constants are
   singletons) degrading to intervals degrading to the full range, with
   an orthogonal poison (X / uninitialized) flag.  Poison forces the
   full range so concretisation stays a superset no matter what the
   transfer functions do with the bounds. *)

module Bitvec = Symbad_hdl.Bitvec
module IntSet = Set.Make (Int)

(* Beyond this cardinality an exact value set collapses to its hull —
   the constant×set layer is for FSM state registers and the like, not
   for datapath words. *)
let max_set = 16

(* Pairwise set transfers are exact only while the product stays
   small; beyond that the interval layer takes over. *)
let max_pairs = 256

type vals = Set of IntSet.t | Range of int * int

type t = { width : int; poison : bool; vals : vals }

let width t = t.width

let max_value w = if w >= 62 then max_int else (1 lsl w) - 1
let mask w v = v land max_value w

let norm_set _w s =
  if IntSet.cardinal s > max_set then
    Range (IntSet.min_elt s, IntSet.max_elt s)
  else Set s

let bottom ~width = { width; poison = false; vals = Set IntSet.empty }
let is_bottom t = (not t.poison) && t.vals = Set IntSet.empty

let top ~width = { width; poison = false; vals = Range (0, max_value width) }
let x ~width = { width; poison = true; vals = Range (0, max_value width) }
let is_poison t = t.poison

let const bv =
  {
    width = Bitvec.width bv;
    poison = false;
    vals = Set (IntSet.singleton (Bitvec.to_int bv));
  }

let of_list ~width vs =
  {
    width;
    poison = false;
    vals = norm_set width (IntSet.of_list (List.map (mask width) vs));
  }

let range ~width lo hi =
  let lo = max 0 lo and hi = min (max_value width) hi in
  if hi < lo then bottom ~width else { width; poison = false; vals = Range (lo, hi) }

let is_const t =
  match (t.poison, t.vals) with
  | false, Set s when IntSet.cardinal s = 1 -> Some (IntSet.min_elt s)
  | false, Range (lo, hi) when lo = hi -> Some lo
  | _ -> None

let bounds t =
  match t.vals with
  | Set s when IntSet.is_empty s -> if t.poison then Some (0, max_value t.width) else None
  | Set s -> Some (IntSet.min_elt s, IntSet.max_elt s)
  | Range (lo, hi) -> Some (lo, hi)

let mem v t =
  t.poison
  ||
  match t.vals with
  | Set s -> IntSet.mem v s
  | Range (lo, hi) -> lo <= v && v <= hi

let equal a b =
  a.width = b.width && a.poison = b.poison
  &&
  match (a.vals, b.vals) with
  | Set s, Set s' -> IntSet.equal s s'
  | Range (lo, hi), Range (lo', hi') -> lo = lo' && hi = hi'
  | _ -> false

let join a b =
  if is_bottom a then b
  else if is_bottom b then a
  else if a.poison || b.poison then x ~width:a.width
  else
    let vals =
      match (a.vals, b.vals) with
      | Set s, Set s' -> norm_set a.width (IntSet.union s s')
      | (Set _ | Range _), (Set _ | Range _) ->
          let alo, ahi = Option.get (bounds a)
          and blo, bhi = Option.get (bounds b) in
          Range (min alo blo, max ahi bhi)
    in
    { width = a.width; poison = false; vals }

let widen ~prev ~next =
  let j = join prev next in
  if equal j prev || is_bottom prev then j
  else
    match (j.vals, bounds prev) with
    | Set _, _ | _, None -> j (* set growth is bounded by [max_set] *)
    | Range (lo, hi), Some (plo, phi) ->
        {
          j with
          vals =
            Range
              ( (if lo < plo then 0 else lo),
                if hi > phi then max_value j.width else hi );
        }

(* --- transfer functions ------------------------------------------------ *)

(* A binary transfer: exact over small sets, [f_range] over the hulls,
   poison propagating, [wout]-wide. *)
let lift2 wout f_exact f_range a b =
  if is_bottom a || is_bottom b then bottom ~width:wout
  else if a.poison || b.poison then x ~width:wout
  else
    match (a.vals, b.vals) with
    | Set sa, Set sb when IntSet.cardinal sa * IntSet.cardinal sb <= max_pairs
      ->
        let s =
          IntSet.fold
            (fun va acc ->
              IntSet.fold
                (fun vb acc -> IntSet.add (mask wout (f_exact va vb)) acc)
                sb acc)
            sa IntSet.empty
        in
        { width = wout; poison = false; vals = norm_set wout s }
    | _ ->
        let alo, ahi = Option.get (bounds a)
        and blo, bhi = Option.get (bounds b) in
        f_range (alo, ahi) (blo, bhi)

let lift1 wout f_exact f_range a =
  if is_bottom a then bottom ~width:wout
  else if a.poison then x ~width:wout
  else
    match a.vals with
    | Set s ->
        let s' =
          IntSet.fold
            (fun v acc -> IntSet.add (mask wout (f_exact v)) acc)
            s IntSet.empty
        in
        { width = wout; poison = false; vals = norm_set wout s' }
    | Range (lo, hi) -> f_range (lo, hi)

let add a b =
  let w = a.width in
  let m = max_value w in
  lift2 w ( + )
    (fun (alo, ahi) (blo, bhi) ->
      (* [ahi + bhi] can overflow the OCaml int; compare by subtraction *)
      if ahi > m - bhi then top ~width:w else range ~width:w (alo + blo) (ahi + bhi))
    a b

let sub a b =
  let w = a.width in
  lift2 w ( - )
    (fun (alo, ahi) (blo, bhi) ->
      if alo >= bhi then range ~width:w (alo - bhi) (ahi - blo)
      else top ~width:w (* a borrow wraps *))
    a b

let mul a b =
  let w = a.width in
  let m = max_value w in
  lift2 w ( * )
    (fun (alo, ahi) (blo, bhi) ->
      if ahi > 0 && bhi > 0 && ahi > m / bhi then top ~width:w
      else range ~width:w (alo * blo) (ahi * bhi))
    a b

(* Smallest all-ones mask covering [v]. *)
let ceil_mask v =
  let rec go m = if m >= v then m else go ((m lsl 1) lor 1) in
  go 0

let logand a b =
  let w = a.width in
  lift2 w ( land )
    (fun (_, ahi) (_, bhi) -> range ~width:w 0 (min ahi bhi))
    a b

let logor a b =
  let w = a.width in
  lift2 w ( lor )
    (fun (alo, ahi) (blo, bhi) ->
      range ~width:w (max alo blo) (ceil_mask (ahi lor bhi)))
    a b

let logxor a b =
  let w = a.width in
  lift2 w ( lxor )
    (fun (_, ahi) (_, bhi) -> range ~width:w 0 (ceil_mask (ahi lor bhi)))
    a b

let lognot a =
  let w = a.width in
  let m = max_value w in
  lift1 w (fun v -> m - v) (fun (lo, hi) -> range ~width:w (m - hi) (m - lo)) a

let neg a =
  let w = a.width in
  let m = max_value w in
  lift1 w
    (fun v -> if v = 0 then 0 else m + 1 - v)
    (fun (lo, hi) ->
      if hi = 0 then of_list ~width:w [ 0 ]
      else if lo = 0 then top ~width:w (* 0 stays put, the rest reflects *)
      else range ~width:w (m + 1 - hi) (m + 1 - lo))
    a

let bool_val vs = of_list ~width:1 vs
let unknown_bool = bool_val [ 0; 1 ]

(* Predicates: decide from the exact sets when both are small, from the
   hulls otherwise. *)
let pred a b ~on_sets ~on_ranges =
  if is_bottom a || is_bottom b then bottom ~width:1
  else if a.poison || b.poison then x ~width:1
  else
    match (a.vals, b.vals) with
    | Set sa, Set sb -> on_sets sa sb
    | _ -> on_ranges (Option.get (bounds a)) (Option.get (bounds b))

let eq a b =
  pred a b
    ~on_sets:(fun sa sb ->
      if IntSet.is_empty (IntSet.inter sa sb) then bool_val [ 0 ]
      else if
        IntSet.cardinal sa = 1 && IntSet.cardinal sb = 1
        && IntSet.equal sa sb
      then bool_val [ 1 ]
      else unknown_bool)
    ~on_ranges:(fun (alo, ahi) (blo, bhi) ->
      if ahi < blo || bhi < alo then bool_val [ 0 ]
      else if alo = ahi && blo = bhi && alo = blo then bool_val [ 1 ]
      else unknown_bool)

let cmp_ranges (alo, ahi) (blo, bhi) ~always ~never =
  if always (alo, ahi) (blo, bhi) then bool_val [ 1 ]
  else if never (alo, ahi) (blo, bhi) then bool_val [ 0 ]
  else unknown_bool

let ult a b =
  pred a b
    ~on_sets:(fun sa sb ->
      cmp_ranges
        (IntSet.min_elt sa, IntSet.max_elt sa)
        (IntSet.min_elt sb, IntSet.max_elt sb)
        ~always:(fun (_, ahi) (blo, _) -> ahi < blo)
        ~never:(fun (alo, _) (_, bhi) -> alo >= bhi))
    ~on_ranges:
      (cmp_ranges
         ~always:(fun (_, ahi) (blo, _) -> ahi < blo)
         ~never:(fun (alo, _) (_, bhi) -> alo >= bhi))

let ule a b =
  pred a b
    ~on_sets:(fun sa sb ->
      cmp_ranges
        (IntSet.min_elt sa, IntSet.max_elt sa)
        (IntSet.min_elt sb, IntSet.max_elt sb)
        ~always:(fun (_, ahi) (blo, _) -> ahi <= blo)
        ~never:(fun (alo, _) (_, bhi) -> alo > bhi))
    ~on_ranges:
      (cmp_ranges
         ~always:(fun (_, ahi) (blo, _) -> ahi <= blo)
         ~never:(fun (alo, _) (_, bhi) -> alo > bhi))

let mux s t f =
  if is_bottom s then bottom ~width:t.width
  else
    match is_const s with
    | Some 1 -> t
    | Some _ -> f
    | None ->
        (* an X selector makes the choice itself X-dependent *)
        let j = join t f in
        if s.poison && not (is_bottom j) then x ~width:j.width else j

let slice ~hi ~lo a =
  let wout = hi - lo + 1 in
  lift1 wout
    (fun v -> (v lsr lo) land max_value wout)
    (fun (l, h) ->
      if lo = 0 && h <= max_value wout then range ~width:wout l h
      else top ~width:wout)
    a

let concat a b =
  let wout = a.width + b.width in
  let wb = b.width in
  if is_bottom a || is_bottom b then bottom ~width:wout
  else if a.poison || b.poison then x ~width:wout
  else
    match (a.vals, b.vals) with
    | Set sa, Set sb when IntSet.cardinal sa * IntSet.cardinal sb <= max_pairs
      ->
        let s =
          IntSet.fold
            (fun va acc ->
              IntSet.fold
                (fun vb acc -> IntSet.add ((va lsl wb) lor vb) acc)
                sb acc)
            sa IntSet.empty
        in
        { width = wout; poison = false; vals = norm_set wout s }
    | _ ->
        let alo, ahi = Option.get (bounds a)
        and blo, bhi = Option.get (bounds b) in
        range ~width:wout ((alo lsl wb) lor blo) ((ahi lsl wb) lor bhi)

(* --- wrap feasibility -------------------------------------------------- *)

let informative a b =
  (not (is_bottom a)) && (not (is_bottom b)) && not (a.poison || b.poison)

let add_may_wrap a b =
  informative a b
  &&
  let _, ahi = Option.get (bounds a) and _, bhi = Option.get (bounds b) in
  ahi > max_value a.width - bhi

let sub_may_wrap a b =
  informative a b
  &&
  let alo, _ = Option.get (bounds a) and _, bhi = Option.get (bounds b) in
  alo < bhi
  && (* exact sets can still rule a borrow out pointwise *)
  match (a.vals, b.vals) with
  | Set sa, Set sb when IntSet.cardinal sa * IntSet.cardinal sb <= max_pairs
    ->
      IntSet.exists (fun va -> IntSet.exists (fun vb -> va < vb) sb) sa
  | _ -> true

let mul_may_wrap a b =
  informative a b
  &&
  let _, ahi = Option.get (bounds a) and _, bhi = Option.get (bounds b) in
  ahi > 0 && bhi > 0 && ahi > max_value a.width / bhi

(* --- rendering --------------------------------------------------------- *)

let to_string t =
  if t.poison then "X"
  else if is_bottom t then "{}"
  else
    match t.vals with
    | Set s ->
        "{"
        ^ String.concat "," (List.map string_of_int (IntSet.elements s))
        ^ "}"
    | Range (lo, hi) -> Printf.sprintf "[%d..%d]" lo hi

let pp fmt t = Format.pp_print_string fmt (to_string t)
