(* The multi-tenant schedule analyzer family.

   Tenants are reconfiguration programs admitted to one shared fabric.
   Solo, each may be clean under [Program_rules]'s may-analysis; the
   hazard this family adds is *interleaving*: between a tenant's
   reconfiguration and its FPGA call, another tenant may reload the
   fabric.  The interference analysis runs the same may-loaded fixpoint
   over the product of two CFGs — nodes are pairs, edges interleave one
   step of either tenant, the fabric state is shared and [Reconfig] is
   still a strong update — so a call that is provably loaded solo can
   become maybe-unloaded in the product, which is exactly the
   context-conflict finding.

   The second rule is admission-time feasibility: each tenant's
   worst-case reconfiguration time is a longest-path bound over its own
   CFG (reconfiguration edges cost, everything else is free), compared
   against the deadline the admission contract grants.  A
   reconfiguration inside a loop has no static bound and is rejected
   outright. *)

module Cfg = Symbad_symbc.Cfg
module Ci = Symbad_symbc.Config_info
module D = Diagnostic

module States = Set.Make (struct
  type t = string option

  let compare = Option.compare String.compare
end)

type ctx = {
  target : string;
  ci : Ci.t;
  tenants : (string * Cfg.t) list;
  cost_ns : string -> int;  (** reconfiguration cost per configuration *)
  deadline_ns : int option;  (** admission deadline; [None] disables wcrt *)
}

(* A fabric reload is dominated by bitstream transfer; 1 ms is the
   order of magnitude the paper's platform reports. *)
let default_cost_ns _config = 1_000_000

let context ?(cost_ns = default_cost_ns) ?deadline_ns ?(target = "tenants") ci
    tenants =
  { target; ci; tenants; cost_ns; deadline_ns }

let diag ctx ?hint ~rule ~severity ~location message =
  D.make ?hint ~rule ~severity ~target:ctx.target ~location message

let transfer (a : Cfg.action) s =
  match a with
  | Cfg.Reconfig c -> if States.is_empty s then s else States.singleton (Some c)
  | Cfg.Nop | Cfg.Call _ -> s

(* Solo may-analysis — same fixpoint as [Program_rules.may_states]. *)
let solo_states (cfg : Cfg.t) =
  let states = Array.make cfg.Cfg.nnodes States.empty in
  states.(cfg.Cfg.entry) <- States.singleton None;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (e : Cfg.edge) ->
        let out = transfer e.Cfg.action states.(e.Cfg.src) in
        let merged = States.union states.(e.Cfg.dst) out in
        if not (States.equal merged states.(e.Cfg.dst)) then begin
          states.(e.Cfg.dst) <- merged;
          changed := true
        end)
      cfg.Cfg.edges
  done;
  states

(* Interleaved-product may-analysis of tenants [a] and [b]: node
   (u, v) indexed as [u * b.nnodes + v], fabric state shared. *)
let product_states (a : Cfg.t) (b : Cfg.t) =
  let nb = b.Cfg.nnodes in
  let states = Array.make (a.Cfg.nnodes * nb) States.empty in
  states.((a.Cfg.entry * nb) + b.Cfg.entry) <- States.singleton None;
  let changed = ref true in
  let relax src dst action =
    let out = transfer action states.(src) in
    let merged = States.union states.(dst) out in
    if not (States.equal merged states.(dst)) then begin
      states.(dst) <- merged;
      changed := true
    end
  in
  while !changed do
    changed := false;
    for v = 0 to nb - 1 do
      List.iter
        (fun (e : Cfg.edge) ->
          relax ((e.Cfg.src * nb) + v) ((e.Cfg.dst * nb) + v) e.Cfg.action)
        a.Cfg.edges
    done;
    for u = 0 to a.Cfg.nnodes - 1 do
      List.iter
        (fun (e : Cfg.edge) ->
          relax ((u * nb) + e.Cfg.src) ((u * nb) + e.Cfg.dst) e.Cfg.action)
        b.Cfg.edges
    done
  done;
  states

let providers ctx f s =
  States.filter
    (function
      | Some c -> Ci.has_configuration ctx.ci c && Ci.provides ctx.ci ~config:c f
      | None -> false)
    s

(* Deterministic edge order, as in [Program_rules]. *)
let sorted_edges (cfg : Cfg.t) =
  List.sort
    (fun (a : Cfg.edge) (b : Cfg.edge) ->
      compare
        (a.Cfg.src, a.Cfg.dst, Cfg.action_to_string a.Cfg.action)
        (b.Cfg.src, b.Cfg.dst, Cfg.action_to_string b.Cfg.action))
    cfg.Cfg.edges

(* --- sched.context-conflict -------------------------------------------- *)

(* FPGA-call edges of [cfg] that the *solo* analysis already certifies:
   reachable, and every may-state provides the function.  Calls the
   solo analysis flags are [cfg.never-loaded]/[cfg.maybe-unloaded]
   findings on the tenant itself, not interference. *)
let solo_clean_calls ctx (cfg : Cfg.t) =
  let solo = solo_states cfg in
  List.filter_map
    (fun (e : Cfg.edge) ->
      match e.Cfg.action with
      | Cfg.Call f when Ci.is_fpga_function ctx.ci f ->
          let s = solo.(e.Cfg.src) in
          if
            (not (States.is_empty s))
            && States.equal (providers ctx f s) s
          then Some (e, f)
          else None
      | _ -> None)
    (sorted_edges cfg)

let rule_context_conflict ctx =
  let seen = Hashtbl.create 8 in
  let pair (an, a) (bn, b) =
    let product = product_states a b in
    let nb = b.Cfg.nnodes in
    List.filter_map
      (fun ((e : Cfg.edge), f) ->
        (* Fabric states reachable at the call site under interleaving
           with [b], over every position [b] may occupy. *)
        let s = ref States.empty in
        for v = 0 to nb - 1 do
          s := States.union !s product.((e.Cfg.src * nb) + v)
        done;
        let bad = States.diff !s (providers ctx f !s) in
        match States.elements bad with
        | [] -> None
        | witness :: _ ->
            let c =
              match witness with Some c -> c | None -> "(unloaded)"
            in
            let key = (an, bn, f, c) in
            if Hashtbl.mem seen key then None
            else begin
              Hashtbl.replace seen key ();
              Some
                (diag ctx ~rule:"sched.context-conflict" ~severity:D.Warning
                   ~location:(Printf.sprintf "tenants %s + %s" an bn)
                   ~hint:
                     "serialize the tenants or partition the fabric before \
                      admission"
                   (Printf.sprintf
                      "call to '%s' in '%s' may run after '%s' reconfigures \
                       the shared fabric to '%s'"
                      f an bn c))
            end)
      (solo_clean_calls ctx a)
  in
  let rec pairs = function
    | [] -> []
    | t :: rest ->
        List.concat_map (fun u -> pair t u @ pair u t) rest @ pairs rest
  in
  pairs ctx.tenants

(* --- sched.wcrt -------------------------------------------------------- *)

(* Longest-path relaxation: after [nnodes] rounds every acyclic path
   has been accounted for; a round [nnodes + 1] change means a
   positive-cost cycle — a reconfiguration inside a loop — so the bound
   is unbounded. *)
let wcrt_bound ctx (cfg : Cfg.t) =
  let minf = min_int in
  let dist = Array.make cfg.Cfg.nnodes minf in
  dist.(cfg.Cfg.entry) <- 0;
  let cost (a : Cfg.action) =
    match a with Cfg.Reconfig c -> ctx.cost_ns c | Cfg.Nop | Cfg.Call _ -> 0
  in
  let relax_round () =
    List.fold_left
      (fun changed (e : Cfg.edge) ->
        if dist.(e.Cfg.src) = minf then changed
        else
          let d = dist.(e.Cfg.src) + cost e.Cfg.action in
          if d > dist.(e.Cfg.dst) then begin
            dist.(e.Cfg.dst) <- d;
            true
          end
          else changed)
      false cfg.Cfg.edges
  in
  let changed = ref true in
  for _ = 1 to cfg.Cfg.nnodes do
    if !changed then changed := relax_round ()
  done;
  if relax_round () then None (* positive cycle: unbounded *)
  else Some (Array.fold_left max 0 dist)

let rule_wcrt ctx =
  match ctx.deadline_ns with
  | None -> []
  | Some deadline ->
      List.filter_map
        (fun (name, cfg) ->
          let mk =
            diag ctx ~rule:"sched.wcrt" ~severity:D.Error
              ~location:("tenant " ^ name)
          in
          match wcrt_bound ctx cfg with
          | None ->
              Some
                (mk
                   ~hint:
                     "hoist the reconfiguration out of the loop or bound the \
                      iteration count"
                   "worst-case reconfiguration time is unbounded: a \
                    reconfiguration sits inside a loop")
          | Some bound when bound > deadline ->
              Some
                (mk
                   ~hint:
                     "raise the admission deadline or drop reconfigurations \
                      from the longest path"
                   (Printf.sprintf
                      "worst-case reconfiguration time %d ns exceeds the \
                       admission deadline %d ns"
                      bound deadline))
          | Some _ -> None)
        ctx.tenants
