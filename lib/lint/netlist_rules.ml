(* The netlist analyzer family.

   All rules work on possibly-*unchecked* netlists
   ([Netlist.make_unchecked]): the defects [Netlist.make] rejects at
   elaboration time must be representable so they can be diagnosed
   here instead of as runtime exceptions.  In that relaxed world an
   [Expr.Reg n] reference resolves, in order, to the register [n], to
   the combinational net driven by output [n] (the [Synth] SSA idiom),
   or to nothing at all (an undriven net).  Properties may read primed
   registers ([Reg "x'"], the next-state value) — primes are stripped
   before resolution. *)

module Expr = Symbad_hdl.Expr
module Bitvec = Symbad_hdl.Bitvec
module Netlist = Symbad_hdl.Netlist
module D = Diagnostic

type ctx = {
  nl : Netlist.t;
  target : string;
  properties : (string * Expr.t) list;
}

let context ?(properties = []) nl =
  { nl; target = Netlist.name nl; properties }

let base_name n =
  let l = String.length n in
  if l > 0 && n.[l - 1] = '\'' then String.sub n 0 (l - 1) else n

let diag ctx ?hint ~rule ~severity ~location message =
  D.make ?hint ~rule ~severity ~target:ctx.target ~location message

(* Every expression in the design, with a location label. *)
let sites ctx =
  List.map
    (fun (r : Netlist.register) -> ("next(" ^ r.Netlist.name ^ ")", r.Netlist.next))
    (Netlist.registers ctx.nl)
  @ List.map (fun (n, e) -> ("output " ^ n, e)) (Netlist.outputs ctx.nl)
  @ List.map (fun (n, e) -> ("property " ^ n, e)) ctx.properties

(* Names appearing more than once, deduplicated, sorted. *)
let duplicates names =
  let count = Hashtbl.create 16 in
  List.iter
    (fun n ->
      Hashtbl.replace count n
        (1 + Option.value ~default:0 (Hashtbl.find_opt count n)))
    names;
  List.sort_uniq String.compare
    (List.filter (fun n -> Hashtbl.find count n > 1) names)

(* All input / register names in the cone of [exprs], expanding
   comb-net (output) references; [through_regs] additionally follows
   register next-state functions (the full cone of influence). *)
let cone nl ~through_regs exprs =
  let used = Hashtbl.create 32 in
  let visited_nets = Hashtbl.create 16 in
  let rec go e =
    Expr.fold_names
      (fun () -> function
        | `Input n -> Hashtbl.replace used n ()
        | `Reg n -> (
            let n = base_name n in
            match Netlist.find_register nl n with
            | Some r ->
                if not (Hashtbl.mem used n) then begin
                  Hashtbl.replace used n ();
                  if through_regs then go r.Netlist.next
                end
            | None -> (
                match Netlist.find_output nl n with
                | Some e' ->
                    if not (Hashtbl.mem visited_nets n) then begin
                      Hashtbl.replace visited_nets n ();
                      go e'
                    end
                | None -> ())))
      () e
  in
  List.iter go exprs;
  used

(* --- net.multi-driven -------------------------------------------------- *)

let rule_multi_driven ctx =
  let nl = ctx.nl in
  let mk = diag ctx ~rule:"net.multi-driven" ~severity:D.Error in
  let state_names =
    List.map fst (Netlist.inputs nl)
    @ List.map (fun (r : Netlist.register) -> r.Netlist.name) (Netlist.registers nl)
  in
  let out_names = List.map fst (Netlist.outputs nl) in
  List.map
    (fun n ->
      mk ~location:("signal " ^ n)
        ~hint:"rename one of the declarations"
        (Printf.sprintf "signal '%s' is declared more than once" n))
    (duplicates state_names)
  @ List.map
      (fun n ->
        mk ~location:("output " ^ n)
          ~hint:"merge or rename the colliding drivers"
          (Printf.sprintf "output '%s' is driven more than once" n))
      (duplicates out_names)
  @ List.filter_map
      (fun n ->
        if List.mem_assoc n (Netlist.inputs nl) then
          Some
            (mk ~location:("output " ^ n)
               ~hint:"rename the output; inputs are externally driven"
               (Printf.sprintf "output '%s' collides with input '%s'" n n))
        else None)
      (List.sort_uniq String.compare out_names)

(* --- net.undriven ------------------------------------------------------ *)

let rule_undriven ctx =
  let nl = ctx.nl in
  let mk = diag ctx ~rule:"net.undriven" ~severity:D.Error in
  let findings =
    List.concat_map
      (fun (loc, e) ->
        Expr.fold_names
          (fun acc -> function
            | `Input n ->
                if Netlist.input_width n nl = None then (loc, `Input, n) :: acc
                else acc
            | `Reg n ->
                let n = base_name n in
                if
                  Netlist.reg_width n nl = None
                  && Netlist.find_output nl n = None
                then (loc, `Net, n) :: acc
                else acc)
          [] e)
      (sites ctx)
  in
  List.sort_uniq compare findings
  |> List.map (fun (loc, kind, n) ->
         match kind with
         | `Input ->
             mk ~location:loc
               ~hint:(Printf.sprintf "declare input '%s'" n)
               (Printf.sprintf "references undeclared input '%s'" n)
         | `Net ->
             mk ~location:loc
               ~hint:
                 (Printf.sprintf
                    "declare a register or drive an output named '%s'" n)
               (Printf.sprintf "references undriven net '%s'" n))

(* --- net.width --------------------------------------------------------- *)

let rule_width ctx =
  let nl = ctx.nl in
  let mk = diag ctx ~rule:"net.width" ~severity:D.Error in
  let outs = Netlist.outputs nl in
  (* Fixpoint-resolve the widths of combinational nets (outputs used as
     [Reg] references); nets in a loop or downstream of a width error
     never resolve. *)
  let resolved = Hashtbl.create 16 in
  let reg_or_net_width n =
    let n = base_name n in
    match Netlist.reg_width n nl with
    | Some w -> Some w
    | None -> Hashtbl.find_opt resolved n
  in
  let input_width n = Netlist.input_width n nl in
  let infer e = Expr.infer_width ~input_width ~reg_width:reg_or_net_width e in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (n, e) ->
        if Netlist.reg_width n nl = None && not (Hashtbl.mem resolved n) then
          match infer e with
          | Ok w ->
              Hashtbl.replace resolved n w;
              changed := true
          | Error _ -> ())
      outs
  done;
  (* An expression referencing a name no width can be assigned to is
     some other rule's finding (net.undriven, net.comb-loop) or the
     cascade of a width error reported at its source — skip it. *)
  let unresolvable e =
    Expr.fold_names
      (fun acc -> function
        | `Input n -> acc || input_width n = None
        | `Reg n -> acc || reg_or_net_width (base_name n) = None)
      false e
  in
  let diags = ref [] in
  let add d = diags := d :: !diags in
  List.iter
    (fun (n, w) ->
      if w < 1 then
        add
          (mk ~location:("input " ^ n)
             (Printf.sprintf "declared width %d, expected at least 1" w)))
    (Netlist.inputs nl);
  List.iter
    (fun (r : Netlist.register) ->
      if Bitvec.width r.Netlist.init <> r.Netlist.width then
        add
          (mk
             ~location:("register " ^ r.Netlist.name)
             ~hint:"make the reset value as wide as the register"
             (Printf.sprintf "init width %d, declared %d"
                (Bitvec.width r.Netlist.init)
                r.Netlist.width));
      match infer r.Netlist.next with
      | Ok w when w = r.Netlist.width -> ()
      | Ok w ->
          add
            (mk
               ~location:("next(" ^ r.Netlist.name ^ ")")
               ~hint:"zero-extend or slice the next-state expression"
               (Printf.sprintf "width %d, declared %d" w r.Netlist.width))
      | Error msg ->
          if not (unresolvable r.Netlist.next) then
            add (mk ~location:("next(" ^ r.Netlist.name ^ ")") msg))
    (Netlist.registers nl);
  List.iter
    (fun (n, e) ->
      match infer e with
      | Ok _ -> ()
      | Error msg ->
          if not (unresolvable e) then add (mk ~location:("output " ^ n) msg))
    outs;
  List.iter
    (fun (n, e) ->
      match infer e with
      | Ok 1 -> ()
      | Ok w ->
          add
            (mk
               ~location:("property " ^ n)
               ~hint:"properties are width-1 truth values"
               (Printf.sprintf "width %d, expected 1" w))
      | Error msg ->
          if not (unresolvable e) then add (mk ~location:("property " ^ n) msg))
    ctx.properties;
  List.rev !diags

(* --- net.comb-loop ----------------------------------------------------- *)

(* Combinational dependencies of an expression: referenced comb nets
   (output names that are not registers).  Registers break cycles. *)
let comb_deps nl e =
  Expr.fold_names
    (fun acc -> function
      | `Input _ -> acc
      | `Reg n ->
          let n = base_name n in
          if Netlist.reg_width n nl = None && Netlist.find_output nl n <> None
          then n :: acc
          else acc)
    [] e
  |> List.rev

let rule_comb_loop ctx =
  let nl = ctx.nl in
  let mk = diag ctx ~rule:"net.comb-loop" ~severity:D.Error in
  let outs = Netlist.outputs nl in
  let color = Hashtbl.create 16 in
  let cycles = ref [] in
  let rec dfs path n =
    match Hashtbl.find_opt color n with
    | Some `Black -> ()
    | Some `Gray ->
        (* n is on the current path: the cycle is everything from its
           first occurrence down to here. *)
        let rec take acc = function
          | [] -> acc
          | x :: rest ->
              if String.equal x n then x :: acc else take (x :: acc) rest
        in
        cycles := take [] path :: !cycles
    | None ->
        Hashtbl.replace color n `Gray;
        (match List.assoc_opt n outs with
        | Some e -> List.iter (dfs (n :: path)) (comb_deps nl e)
        | None -> ());
        Hashtbl.replace color n `Black
  in
  List.iter (fun (n, _) -> dfs [] n) outs;
  let seen = Hashtbl.create 4 in
  List.rev !cycles
  |> List.filter_map (fun cycle ->
         let key = String.concat "," (List.sort String.compare cycle) in
         if Hashtbl.mem seen key then None
         else begin
           Hashtbl.replace seen key ();
           let head = List.hd cycle in
           Some
             (mk
                ~location:("output " ^ head)
                ~hint:"break the loop with a register"
                (Printf.sprintf "combinational loop: %s -> %s"
                   (String.concat " -> " cycle)
                   head))
         end)

(* --- net.unused -------------------------------------------------------- *)

let rule_unused ctx =
  let nl = ctx.nl in
  let mk = diag ctx ~rule:"net.unused" ~severity:D.Warning in
  let seeds =
    List.map snd (Netlist.outputs nl) @ List.map snd ctx.properties
  in
  let used = cone nl ~through_regs:true seeds in
  List.filter_map
    (fun (n, _) ->
      if Hashtbl.mem used n then None
      else
        Some
          (mk ~location:("input " ^ n)
             ~hint:"remove it or wire it into the logic"
             (Printf.sprintf
                "input '%s' is outside the cone of every output and property"
                n)))
    (Netlist.inputs nl)
  @ List.filter_map
      (fun (r : Netlist.register) ->
        if Hashtbl.mem used r.Netlist.name then None
        else
          Some
            (mk
               ~location:("register " ^ r.Netlist.name)
               ~hint:"remove it or reference it from an output or property"
               (Printf.sprintf
                  "register '%s' is outside the cone of every output and \
                   property"
                  r.Netlist.name)))
      (Netlist.registers nl)

(* --- net.dead-logic ---------------------------------------------------- *)

let fold_const e =
  if Expr.fold_names (fun _ _ -> true) false e then None
  else
    try
      Some (Expr.eval ~input:(fun _ -> raise Exit) ~reg:(fun _ -> raise Exit) e)
    with _ -> None

let rule_dead_logic ctx =
  let mk = diag ctx ~rule:"net.dead-logic" ~severity:D.Warning in
  let rec scan ~loc acc (e : Expr.t) =
    let acc =
      match e with
      | Expr.Mux (s, t, f) -> (
          match fold_const s with
          | Some v ->
              mk ~location:loc
                ~hint:"drop the mux and keep the live arm"
                (Printf.sprintf
                   "mux selector folds to constant %d; the %s arm is dead"
                   (Bitvec.to_int v)
                   (if Bitvec.to_int v = 1 then "else" else "then"))
              :: acc
          | None -> (
              match (fold_const t, fold_const f) with
              | Some a, Some b when Bitvec.equal a b ->
                  mk ~location:loc
                    ~hint:"replace the mux with the constant"
                    "both mux arms fold to the same constant"
                  :: acc
              | _ -> acc))
      | _ -> acc
    in
    match e with
    | Expr.Const _ | Expr.Input _ | Expr.Reg _ -> acc
    | Expr.Unop (_, a) | Expr.Slice (a, _, _) -> scan ~loc acc a
    | Expr.Binop (_, a, b) | Expr.Concat (a, b) ->
        scan ~loc (scan ~loc acc a) b
    | Expr.Mux (a, b, c) -> scan ~loc (scan ~loc (scan ~loc acc a) b) c
  in
  let mux_diags =
    List.fold_left (fun acc (loc, e) -> scan ~loc acc e) [] (sites ctx)
    |> List.rev
  in
  let prop_diags =
    List.filter_map
      (fun (n, f) ->
        let loc = "property " ^ n in
        match fold_const f with
        | Some v ->
            Some
              (mk ~location:loc
                 ~hint:"a constant property checks nothing"
                 (Printf.sprintf "folds to constant %d (%s)" (Bitvec.to_int v)
                    (if Bitvec.to_int v = 1 then "trivially true"
                     else "never satisfiable")))
        | None -> (
            match f with
            | Expr.Binop (Expr.Or, Expr.Unop (Expr.Not, a), _) -> (
                match fold_const a with
                | Some v when Bitvec.to_int v = 0 ->
                    Some
                      (mk ~location:loc
                         ~hint:"the implication can never be exercised"
                         "implication antecedent folds to false; the property \
                          is vacuous")
                | _ -> None)
            | _ -> None))
      ctx.properties
  in
  mux_diags @ prop_diags

(* --- net.no-reset ------------------------------------------------------ *)

let reset_like = [ "reset"; "rst"; "rst_n"; "arst"; "nreset" ]

let rule_no_reset ctx =
  let nl = ctx.nl in
  let mk = diag ctx ~rule:"net.no-reset" ~severity:D.Warning in
  let resets =
    List.filter
      (fun (n, _) -> List.mem (String.lowercase_ascii n) reset_like)
      (Netlist.inputs nl)
  in
  if resets = [] then
    (* registers reset through their init values; without an explicit
       reset input there is no reset path to cover *)
    []
  else
    List.filter_map
      (fun (r : Netlist.register) ->
        let seen = cone nl ~through_regs:false [ r.Netlist.next ] in
        if List.exists (fun (n, _) -> Hashtbl.mem seen n) resets then None
        else
          Some
            (mk
               ~location:("register " ^ r.Netlist.name)
               ~hint:
                 (Printf.sprintf "gate next(%s) with input '%s'"
                    r.Netlist.name
                    (fst (List.hd resets)))
               (Printf.sprintf
                  "register '%s' has no path from any reset input"
                  r.Netlist.name)))
      (Netlist.registers nl)
