(* The pass framework: rule selection, governed parallel fan-out, one
   report shape for all three analyzer families, and the lint-to-proof
   escalation bridge into the model checker. *)

module Par = Symbad_par.Par
module Gov = Symbad_gov.Gov
module Obs = Symbad_obs.Obs
module Json = Symbad_obs.Json
module Mc = Symbad_mc
module D = Diagnostic

type report = {
  target : string;
  rules_run : string list;
  suppressed : string list;
  skipped_rules : string list;
  diagnostics : D.t list;
}

let netlist_rule_ids =
  [
    "net.width";
    "net.undriven";
    "net.multi-driven";
    "net.comb-loop";
    "net.unused";
    "net.dead-logic";
    "net.no-reset";
    "net.x-prop";
    "net.range";
    "net.unreachable-state";
    "net.const-reg";
  ]

let program_rule_ids =
  [
    "cfg.never-loaded";
    "cfg.maybe-unloaded";
    "cfg.unknown-config";
    "cfg.redundant-config";
    "cfg.unreachable-config";
  ]

let sched_rule_ids = [ "sched.context-conflict"; "sched.wcrt" ]

let all_rule_ids = netlist_rule_ids @ program_rule_ids @ sched_rule_ids

(* Selection: [rules] restricts (unknown ids rejected — a CLI typo must
   not read as "clean"), [suppress] disables but is recorded. *)
let select ~family ?rules ?(suppress = []) () =
  (match rules with
  | None -> ()
  | Some ids ->
      List.iter
        (fun id ->
          if not (List.mem id all_rule_ids) then
            invalid_arg
              (Printf.sprintf "Lint: unknown rule '%s' (known: %s)" id
                 (String.concat ", " all_rule_ids)))
        ids);
  let wanted id = match rules with None -> true | Some ids -> List.mem id ids in
  let active =
    List.filter (fun id -> wanted id && not (List.mem id suppress)) family
  in
  (active, List.filter (fun id -> List.mem id family) suppress)

(* Governed fan-out: one rule = one pattern.  The allowance is read
   once, before the parallel map, so the set of rules run — and with it
   the report — is the same at any pool width. *)
let run_rules ~target ~family ~impl ?pool ?gov ?rules ?suppress () =
  let pool = Par.get pool and gov = Gov.get gov in
  let active, suppressed = select ~family ?rules ?suppress () in
  let affordable =
    match Gov.patterns_left gov with
    | None -> List.length active
    | Some k -> min k (List.length active)
  in
  let rec split n = function
    | rest when n = 0 -> ([], rest)
    | [] -> ([], [])
    | x :: rest ->
        let run, skip = split (n - 1) rest in
        (x :: run, skip)
  in
  let to_run, skipped = split affordable active in
  let run () =
    let diags =
      Par.map ~label:"lint" pool (fun id -> impl id) to_run |> List.concat
    in
    Gov.charge_patterns gov (List.length to_run);
    if Obs.enabled () then begin
      Obs.incr_counter ~by:(List.length to_run) "lint.rules_run";
      Obs.incr_counter ~by:(List.length diags) "lint.diagnostics";
      Obs.incr_counter
        ~by:(List.length (List.filter (fun d -> d.D.severity = D.Error) diags))
        "lint.errors"
    end;
    {
      target;
      rules_run = to_run;
      suppressed;
      skipped_rules = skipped;
      diagnostics = D.order diags;
    }
  in
  if Obs.enabled () then
    Obs.span ~track:"lint" ~args:[ ("target", Json.Str target) ] "lint" run
  else run ()

let run_netlist ?pool ?gov ?rules ?suppress ?properties nl =
  let ctx = Netlist_rules.context ?properties nl in
  let impl = function
    | "net.width" -> Netlist_rules.rule_width ctx
    | "net.undriven" -> Netlist_rules.rule_undriven ctx
    | "net.multi-driven" -> Netlist_rules.rule_multi_driven ctx
    | "net.comb-loop" -> Netlist_rules.rule_comb_loop ctx
    | "net.unused" -> Netlist_rules.rule_unused ctx
    | "net.dead-logic" -> Netlist_rules.rule_dead_logic ctx
    | "net.no-reset" -> Netlist_rules.rule_no_reset ctx
    | "net.x-prop" -> Netlist_absint.rule_x_prop ctx
    | "net.range" -> Netlist_absint.rule_range ctx
    | "net.unreachable-state" -> Netlist_absint.rule_unreachable_state ctx
    | "net.const-reg" -> Netlist_absint.rule_const_reg ctx
    | id -> invalid_arg ("Lint: not a netlist rule: " ^ id)
  in
  run_rules ~target:ctx.Netlist_rules.target ~family:netlist_rule_ids ~impl
    ?pool ?gov ?rules ?suppress ()

let run_cfg ?pool ?gov ?rules ?suppress ?(name = "program") ci cfg =
  let ctx = Program_rules.context ~target:name ci cfg in
  let impl = function
    | "cfg.never-loaded" -> Program_rules.rule_never_loaded ctx
    | "cfg.maybe-unloaded" -> Program_rules.rule_maybe_unloaded ctx
    | "cfg.unknown-config" -> Program_rules.rule_unknown_config ctx
    | "cfg.redundant-config" -> Program_rules.rule_redundant_config ctx
    | "cfg.unreachable-config" -> Program_rules.rule_unreachable_config ctx
    | id -> invalid_arg ("Lint: not a program rule: " ^ id)
  in
  run_rules ~target:name ~family:program_rule_ids ~impl ?pool ?gov ?rules
    ?suppress ()

let run_program ?pool ?gov ?rules ?suppress ?name ci program =
  run_cfg ?pool ?gov ?rules ?suppress ?name ci (Symbad_symbc.Cfg.build program)

let run_tenants ?pool ?gov ?rules ?suppress ?cost_ns ?deadline_ns
    ?(name = "tenants") ci tenants =
  let cfgs =
    List.map (fun (n, prog) -> (n, Symbad_symbc.Cfg.build prog)) tenants
  in
  let ctx =
    Sched_rules.context ?cost_ns ?deadline_ns ~target:name ci cfgs
  in
  let impl = function
    | "sched.context-conflict" -> Sched_rules.rule_context_conflict ctx
    | "sched.wcrt" -> Sched_rules.rule_wcrt ctx
    | id -> invalid_arg ("Lint: not a schedule rule: " ^ id)
  in
  run_rules ~target:name ~family:sched_rule_ids ~impl ?pool ?gov ?rules
    ?suppress ()

(* --- lint-to-proof escalation ------------------------------------------ *)

(* A warning that carries a definable obligation becomes a model-checker
   query; the verdict folds back into the same diagnostic.  Verdicts
   are folded in the obligations' deterministic order and the report is
   re-sorted with [D.order], so escalated reports stay byte-identical
   at any pool width (check_all splits the governor before its
   fan-out). *)
(* [max_conflicts] is deliberately far below the engine's own default:
   escalation is a lint pass, not the level-4 gate, and an obligation
   the solver cannot settle inside the allowance degrades to an
   [Inconclusive] discharge (the warning keeps its severity) instead of
   stalling the whole report.  Conflict counts are deterministic, so
   the cap never breaks byte-identity across pool widths. *)
let escalate ?pool ?gov ?(max_depth = 12) ?(max_conflicts = 2_000) ?properties
    nl report =
  let ctx = Netlist_rules.context ?properties nl in
  let key (d : D.t) = (d.D.rule, d.D.location, d.D.message) in
  let wanted =
    List.filter
      (fun (o : Netlist_absint.obligation) ->
        List.exists
          (fun (d : D.t) ->
            d.D.discharged = None
            && key d = (o.Netlist_absint.rule, o.Netlist_absint.location,
                        o.Netlist_absint.message))
          report.diagnostics)
      (Netlist_absint.obligations ctx)
  in
  if wanted = [] then report
  else begin
    let mc_reports =
      Mc.Engine.check_all ?pool ~max_depth ~max_conflicts ?gov nl
        (List.map (fun (o : Netlist_absint.obligation) -> o.Netlist_absint.prop)
           wanted)
    in
    let verdicts = List.combine wanted mc_reports in
    let apply (d : D.t) =
      match
        List.find_opt
          (fun ((o : Netlist_absint.obligation), _) ->
            d.D.discharged = None
            && key d = (o.Netlist_absint.rule, o.Netlist_absint.location,
                        o.Netlist_absint.message))
          verdicts
      with
      | None -> d
      | Some (_, (mc : Mc.Engine.report)) -> (
          match mc.Mc.Engine.verdict with
          | Mc.Engine.Proved { method_; depth } ->
              {
                d with
                D.severity = D.Info;
                D.discharged =
                  Some
                    {
                      D.status = D.Proved;
                      detail = Printf.sprintf "%s, depth %d" method_ depth;
                      counterexample = None;
                    };
              }
          | Mc.Engine.Falsified tr ->
              {
                d with
                D.severity = D.Error;
                D.discharged =
                  Some
                    {
                      D.status = D.Disproved;
                      detail =
                        Printf.sprintf "counterexample, %d frames"
                          (Mc.Trace.length tr);
                      counterexample = Some (Fmt.str "%a" Mc.Trace.pp tr);
                    };
              }
          | Mc.Engine.Unknown { reason } ->
              {
                d with
                D.discharged =
                  Some
                    {
                      D.status = D.Inconclusive;
                      detail = reason;
                      counterexample = None;
                    };
              })
    in
    { report with diagnostics = D.order (List.map apply report.diagnostics) }
  end

let merge ~target reports =
  let union ls =
    List.fold_left
      (fun acc l ->
        List.fold_left
          (fun acc x -> if List.mem x acc then acc else acc @ [ x ])
          acc l)
      [] ls
  in
  {
    target;
    rules_run = union (List.map (fun r -> r.rules_run) reports);
    suppressed = union (List.map (fun r -> r.suppressed) reports);
    skipped_rules = union (List.map (fun r -> r.skipped_rules) reports);
    diagnostics = D.order (List.concat_map (fun r -> r.diagnostics) reports);
  }

let count_at_least sev r =
  List.length
    (List.filter
       (fun d -> D.severity_rank d.D.severity <= D.severity_rank sev)
       r.diagnostics)

let errors r = count_at_least D.Error r
let warnings r = count_at_least D.Warning r - errors r

let to_json r =
  Json.Obj
    [
      ("schema_version", Json.Int D.schema_version);
      ("lint", Json.Str r.target);
      ("rules_run", Json.List (List.map (fun s -> Json.Str s) r.rules_run));
      ("suppressed", Json.List (List.map (fun s -> Json.Str s) r.suppressed));
      ("skipped", Json.List (List.map (fun s -> Json.Str s) r.skipped_rules));
      ("errors", Json.Int (errors r));
      ("warnings", Json.Int (warnings r));
      ("diagnostics", Json.List (List.map D.to_json r.diagnostics));
    ]

let to_markdown r =
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "## Lint: %s\n\n" r.target);
  Buffer.add_string b
    (Printf.sprintf "%d rules run, %d errors, %d warnings%s%s\n\n"
       (List.length r.rules_run) (errors r) (warnings r)
       (if r.suppressed = [] then ""
        else ", suppressed: " ^ String.concat " " r.suppressed)
       (if r.skipped_rules = [] then ""
        else ", skipped (governor): " ^ String.concat " " r.skipped_rules));
  if r.diagnostics <> [] then begin
    Buffer.add_string b "| severity | rule | location | message | hint |\n";
    Buffer.add_string b "|---|---|---|---|---|\n";
    List.iter
      (fun (d : D.t) ->
        Buffer.add_string b
          (Printf.sprintf "| %s | %s | %s | %s | %s |\n"
             (D.severity_label d.D.severity)
             d.D.rule d.D.location d.D.message
             (Option.value ~default:"" d.D.hint)))
      r.diagnostics
  end;
  Buffer.contents b

let pp fmt r =
  Fmt.pf fmt "lint %s: %d rules, %d errors, %d warnings@." r.target
    (List.length r.rules_run) (errors r) (warnings r);
  List.iter
    (fun (d : D.t) ->
      Fmt.pf fmt "  %a@." D.pp d;
      match d.D.discharged with
      | Some { D.counterexample = Some cex; _ } ->
          String.split_on_char '\n' (String.trim cex)
          |> List.iter (fun line -> Fmt.pf fmt "    %s@." line)
      | _ -> ())
    r.diagnostics;
  if r.skipped_rules <> [] then
    Fmt.pf fmt "  skipped (governor): %s@."
      (String.concat " " r.skipped_rules)
