(* The reconfiguration analyzer family: static dataflow over the
   mini-C CFG, no simulation.

   One forward may-analysis computes, per CFG node, the set of FPGA
   states — [None] (unloaded) or [Some config] — that can hold when
   control reaches it.  [Reconfig c] is a strong update (the whole
   fabric is reloaded, so the post-state is exactly [{Some c}]); every
   other action is the identity.  Because reconfiguration replaces the
   state wholesale, a singleton may-set is simultaneously the must-set,
   which is what makes the redundancy rule exact.

   The may/must gap is the documented warning direction: a call whose
   context is loaded on only *some* paths is a warning here (dynamic
   SymbC decides), never a silent pass. *)

module Cfg = Symbad_symbc.Cfg
module Ci = Symbad_symbc.Config_info
module D = Diagnostic

module States = Set.Make (struct
  type t = string option

  let compare = Option.compare String.compare
end)

type ctx = { ci : Ci.t; cfg : Cfg.t; target : string }

let context ~target ci cfg = { ci; cfg; target }

let diag ctx ?hint ~rule ~severity ~location message =
  D.make ?hint ~rule ~severity ~target:ctx.target ~location message

let edge_loc (e : Cfg.edge) =
  Printf.sprintf "edge %d->%d (%s)" e.Cfg.src e.Cfg.dst
    (Cfg.action_to_string e.Cfg.action)

(* Deterministic edge order for reporting. *)
let edges ctx =
  List.sort
    (fun (a : Cfg.edge) (b : Cfg.edge) ->
      compare
        (a.Cfg.src, a.Cfg.dst, Cfg.action_to_string a.Cfg.action)
        (b.Cfg.src, b.Cfg.dst, Cfg.action_to_string b.Cfg.action))
    ctx.cfg.Cfg.edges

(* The may-analysis fixpoint: reachable nodes have non-empty sets. *)
let may_states ctx =
  let cfg = ctx.cfg in
  let states = Array.make cfg.Cfg.nnodes States.empty in
  states.(cfg.Cfg.entry) <- States.singleton None;
  let transfer (a : Cfg.action) s =
    match a with
    | Cfg.Reconfig c -> if States.is_empty s then s else States.singleton (Some c)
    | Cfg.Nop | Cfg.Call _ -> s
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (e : Cfg.edge) ->
        let out = transfer e.Cfg.action states.(e.Cfg.src) in
        let merged = States.union states.(e.Cfg.dst) out in
        if not (States.equal merged states.(e.Cfg.dst)) then begin
          states.(e.Cfg.dst) <- merged;
          changed := true
        end)
      cfg.Cfg.edges
  done;
  states

let state_label = function None -> "unloaded" | Some c -> c

let providers ctx f s =
  States.filter
    (function
      | Some c -> Ci.has_configuration ctx.ci c && Ci.provides ctx.ci ~config:c f
      | None -> false)
    s

(* --- cfg.never-loaded / cfg.maybe-unloaded ----------------------------- *)

let call_findings ctx =
  let may = may_states ctx in
  List.filter_map
    (fun (e : Cfg.edge) ->
      match e.Cfg.action with
      | Cfg.Call f when Ci.is_fpga_function ctx.ci f ->
          let s = may.(e.Cfg.src) in
          if States.is_empty s then None (* unreachable: not a call defect *)
          else
            let good = providers ctx f s in
            if States.is_empty good then Some (`Never, e, f, s)
            else if States.cardinal good < States.cardinal s then
              Some (`Maybe, e, f, s)
            else None
      | _ -> None)
    (edges ctx)

let rule_never_loaded ctx =
  List.filter_map
    (fun finding ->
      match finding with
      | `Never, e, f, _ ->
          Some
            (diag ctx ~rule:"cfg.never-loaded" ~severity:D.Error
               ~location:(edge_loc e)
               ~hint:
                 (Printf.sprintf
                    "insert a reconfiguration loading a context that provides \
                     '%s' before the call"
                    f)
               (Printf.sprintf
                  "call to FPGA function '%s': no path loads a providing \
                   configuration"
                  f))
      | _ -> None)
    (call_findings ctx)

let rule_maybe_unloaded ctx =
  List.filter_map
    (fun finding ->
      match finding with
      | `Maybe, e, f, s ->
          Some
            (diag ctx ~rule:"cfg.maybe-unloaded" ~severity:D.Warning
               ~location:(edge_loc e)
               ~hint:"dynamic SymbC decides; reconfigure on every path to fix"
               (Printf.sprintf
                  "call to FPGA function '%s' reachable with states {%s}; not \
                   all provide it"
                  f
                  (String.concat ", "
                     (List.map state_label (States.elements s)))))
      | _ -> None)
    (call_findings ctx)

(* --- cfg.unknown-config ------------------------------------------------ *)

let rule_unknown_config ctx =
  List.filter_map
    (fun (e : Cfg.edge) ->
      match e.Cfg.action with
      | Cfg.Reconfig c when not (Ci.has_configuration ctx.ci c) ->
          Some
            (diag ctx ~rule:"cfg.unknown-config" ~severity:D.Error
               ~location:(edge_loc e)
               ~hint:"declare it in the configuration information"
               (Printf.sprintf "reconfiguration loads unknown configuration \
                                '%s'" c))
      | _ -> None)
    (edges ctx)

(* --- cfg.redundant-config ---------------------------------------------- *)

let rule_redundant_config ctx =
  let may = may_states ctx in
  List.filter_map
    (fun (e : Cfg.edge) ->
      match e.Cfg.action with
      | Cfg.Reconfig c
        when States.equal may.(e.Cfg.src) (States.singleton (Some c)) ->
          Some
            (diag ctx ~rule:"cfg.redundant-config" ~severity:D.Warning
               ~location:(edge_loc e)
               ~hint:"drop the call; reconfiguration is not free"
               (Printf.sprintf
                  "configuration '%s' is already loaded on every path here" c))
      | _ -> None)
    (edges ctx)

(* --- cfg.unreachable-config -------------------------------------------- *)

let rule_unreachable_config ctx =
  let may = may_states ctx in
  List.filter_map
    (fun (e : Cfg.edge) ->
      match e.Cfg.action with
      | Cfg.Reconfig c when States.is_empty may.(e.Cfg.src) ->
          Some
            (diag ctx ~rule:"cfg.unreachable-config" ~severity:D.Warning
               ~location:(edge_loc e)
               ~hint:"dead code: remove it or fix the control flow"
               (Printf.sprintf "unreachable reconfiguration of '%s'" c))
      | _ -> None)
    (edges ctx)
