(** The abstract value lattice of the netlist abstract interpreter: a
    three-valued-constant × interval product with an explicit X element
    for uninitialized state.

    An abstract value describes the set of [width]-bit words a signal
    may carry across all reachable cycles.  Precision degrades in
    steps: a small exact value set (constants are singletons), then a
    contiguous interval, then the full range; the orthogonal [poison]
    flag records that the signal may additionally be X — uninitialized
    silicon whose simulation value (the reset init) under-represents
    real hardware.  [poison] forces the full range, so membership
    ({!mem}) stays a one-sided over-approximation.

    All operations are deterministic and total; soundness contract:
    if concrete inputs lie in the operand abstractions, the concrete
    {!Symbad_hdl.Bitvec} result lies in the result abstraction. *)

type t

val width : t -> int

val bottom : width:int -> t
(** The empty set (unreachable). *)

val is_bottom : t -> bool

val const : Symbad_hdl.Bitvec.t -> t
(** The singleton. *)

val of_list : width:int -> int list -> t
val range : width:int -> int -> int -> t
val top : width:int -> t

val x : width:int -> t
(** Uninitialized: full range with the poison flag set. *)

val is_poison : t -> bool

val is_const : t -> int option
(** [Some v] iff the value is exactly the non-poison singleton [v]. *)

val bounds : t -> (int * int) option
(** Inclusive bounds of a non-bottom value. *)

val mem : int -> t -> bool
(** Concretisation membership — the soundness predicate. *)

val equal : t -> t -> bool

val join : t -> t -> t

val widen : prev:t -> next:t -> t
(** Back-edge widening: any still-moving bound jumps to its extreme, so
    iteration converges in a bounded number of rounds. *)

(** {1 Abstract transfer functions}

    Mirrors of the {!Symbad_hdl.Expr} operators over [Bitvec]
    wraparound semantics.  Binary transfers require equal operand
    widths (as the checked IR guarantees). *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t
val lognot : t -> t
val neg : t -> t
val eq : t -> t -> t
val ult : t -> t -> t
val ule : t -> t -> t
val mux : t -> t -> t -> t
val slice : hi:int -> lo:int -> t -> t
val concat : t -> t -> t

(** {1 Arithmetic wrap feasibility — the [net.range] queries} *)

val add_may_wrap : t -> t -> bool
(** May [a + b] exceed the word size (so the hardware result wraps)?
    False when either operand is bottom or poison (X propagation is
    [net.x-prop]'s finding, not a range finding). *)

val sub_may_wrap : t -> t -> bool
(** May [a - b] borrow (some a < some b)? *)

val mul_may_wrap : t -> t -> bool

val to_string : t -> string
(** Stable rendering for diagnostics: ["X"], ["{0,2,4}"], ["[0..255]"]. *)

val pp : Format.formatter -> t -> unit
