(* SARIF 2.1.0 rendering of a lint report — the minimal subset CI
   annotators consume: one run, the rule catalogue under
   tool.driver.rules, one result per diagnostic.  Severity maps
   error/warning as-is and Info to SARIF's "note"; escalation verdicts
   ride in the result's properties bag.  Diagnostics are already in
   {!Diagnostic.order}, so the export is byte-stable. *)

module Json = Symbad_obs.Json
module D = Diagnostic

let schema_uri =
  "https://json.schemastore.org/sarif-2.1.0.json"

let level_of_severity = function
  | D.Error -> "error"
  | D.Warning -> "warning"
  | D.Info -> "note"

let rule_entry id = Json.Obj [ ("id", Json.Str id) ]

let result_of_diag (d : D.t) =
  let properties =
    (match d.D.hint with None -> [] | Some h -> [ ("hint", Json.Str h) ])
    @
    match d.D.discharged with
    | None -> []
    | Some g ->
        [
          ("discharged", Json.Str (D.discharge_label g.D.status));
          ("dischargeDetail", Json.Str g.D.detail);
        ]
        @ (match g.D.counterexample with
          | None -> []
          | Some cex -> [ ("counterexample", Json.Str cex) ])
  in
  Json.Obj
    ([
       ("ruleId", Json.Str d.D.rule);
       ("level", Json.Str (level_of_severity d.D.severity));
       ("message", Json.Obj [ ("text", Json.Str d.D.message) ]);
       ( "locations",
         Json.List
           [
             Json.Obj
               [
                 ( "logicalLocations",
                   Json.List
                     [
                       Json.Obj
                         [
                           ( "fullyQualifiedName",
                             Json.Str (d.D.target ^ ":" ^ d.D.location) );
                         ];
                     ] );
               ];
           ] );
     ]
    @ if properties = [] then [] else [ ("properties", Json.Obj properties) ])

let of_report (r : Lint.report) =
  Json.Obj
    [
      ("$schema", Json.Str schema_uri);
      ("version", Json.Str "2.1.0");
      ( "runs",
        Json.List
          [
            Json.Obj
              [
                ( "tool",
                  Json.Obj
                    [
                      ( "driver",
                        Json.Obj
                          [
                            ("name", Json.Str "symbad-lint");
                            ( "rules",
                              Json.List
                                (List.map rule_entry r.Lint.rules_run) );
                          ] );
                    ] );
                ( "results",
                  Json.List (List.map result_of_diag r.Lint.diagnostics) );
              ];
          ] );
    ]
