(* Forward abstract interpretation over registers to fixpoint.

   The concrete semantics being over-approximated is
   [Hdl.Simulator]: registers start at their init values and step
   through their next-state functions under arbitrary inputs.  The one
   deliberate divergence is X: when the netlist has an explicit
   reset-like input, a register whose next-state cone ignores it is
   modelled as X (uninitialized) rather than as its init value —
   real silicon does not grant those registers a power-up value, only
   the simulator does.  X forces the full value range, so the
   abstraction still contains every simulator run. *)

module Expr = Symbad_hdl.Expr
module Bitvec = Symbad_hdl.Bitvec
module Netlist = Symbad_hdl.Netlist
module VD = Value_domain
module D = Diagnostic
module Prop = Symbad_mc.Prop

type analysis = {
  nl : Netlist.t;
  env : (string * VD.t) list;  (* per-register fixpoint value *)
  xregs : string list;  (* registers modelled as X after reset *)
}

let reg_value a name = List.assoc_opt name a.env
let x_registers a = a.xregs

(* Structural soundness: the netlist [Netlist.make] would accept.  The
   syntactic rules own everything else; interpreting a malformed
   netlist would only cascade their findings. *)
let structurally_sound nl =
  match
    Netlist.make ~name:(Netlist.name nl) ~inputs:(Netlist.inputs nl)
      ~registers:(Netlist.registers nl) ~outputs:(Netlist.outputs nl)
  with
  | _ -> true
  | exception _ -> false

(* Same predicate as [net.no-reset], shared so the X model and the
   rule can never disagree. *)
let unreset_registers nl =
  let resets =
    List.filter
      (fun (n, _) ->
        List.mem (String.lowercase_ascii n) Netlist_rules.reset_like)
      (Netlist.inputs nl)
  in
  if resets = [] then []
  else
    List.filter_map
      (fun (r : Netlist.register) ->
        let seen = Netlist_rules.cone nl ~through_regs:false [ r.Netlist.next ] in
        if List.exists (fun (n, _) -> Hashtbl.mem seen n) resets then None
        else Some r.Netlist.name)
      (Netlist.registers nl)

exception Unresolved

(* Abstract evaluation of an expression under a register environment.
   Combinational nets (output names read as [Reg], the Synth SSA
   idiom) are expanded in place; primed register reads (properties)
   resolve to the register's fixpoint value, which is closed under the
   transition so the prime is absorbed soundly.  [hook] observes every
   binop with its operand expressions and abstract values — but not
   inside expanded comb nets, whose arithmetic is attributed to their
   own site. *)
let rec eval ?hook nl env visited (e : Expr.t) : VD.t =
  match e with
  | Expr.Const b -> VD.const b
  | Expr.Input n -> (
      match Netlist.input_width n nl with
      | Some w -> VD.top ~width:w
      | None -> raise Unresolved)
  | Expr.Reg n -> (
      let n = Netlist_rules.base_name n in
      match List.assoc_opt n env with
      | Some v -> v
      | None -> (
          match Netlist.find_output nl n with
          | Some e' ->
              if List.mem n visited then raise Unresolved
              else eval nl env (n :: visited) e'
          | None -> raise Unresolved))
  | Expr.Unop (Expr.Not, a) -> VD.lognot (eval ?hook nl env visited a)
  | Expr.Unop (Expr.Neg, a) -> VD.neg (eval ?hook nl env visited a)
  | Expr.Binop (op, a, b) ->
      let va = eval ?hook nl env visited a in
      let vb = eval ?hook nl env visited b in
      (match hook with Some h -> h op a b va vb | None -> ());
      (match op with
      | Expr.Add -> VD.add va vb
      | Expr.Sub -> VD.sub va vb
      | Expr.Mul -> VD.mul va vb
      | Expr.And -> VD.logand va vb
      | Expr.Or -> VD.logor va vb
      | Expr.Xor -> VD.logxor va vb
      | Expr.Eq -> VD.eq va vb
      | Expr.Ult -> VD.ult va vb
      | Expr.Ule -> VD.ule va vb)
  | Expr.Mux (s, t, f) ->
      let vs = eval ?hook nl env visited s in
      let vt = eval ?hook nl env visited t in
      let vf = eval ?hook nl env visited f in
      VD.mux vs vt vf
  | Expr.Slice (a, hi, lo) -> VD.slice ~hi ~lo (eval ?hook nl env visited a)
  | Expr.Concat (a, b) ->
      VD.concat (eval ?hook nl env visited a) (eval ?hook nl env visited b)

(* Iterations of plain join before widening kicks in; enough for small
   exact sets to close, few enough that intervals converge quickly. *)
let widen_after = 8
let max_iterations = 64

let analyze ?(properties = []) nl =
  ignore properties;
  if not (structurally_sound nl) then None
  else
    let regs = Netlist.registers nl in
    let xregs = unreset_registers nl in
    let init_of (r : Netlist.register) =
      if List.mem r.Netlist.name xregs then VD.x ~width:r.Netlist.width
      else VD.const r.Netlist.init
    in
    let env0 = List.map (fun (r : Netlist.register) -> (r.Netlist.name, init_of r)) regs in
    let all_top () =
      List.map
        (fun (r : Netlist.register) ->
          ( r.Netlist.name,
            if List.mem r.Netlist.name xregs then VD.x ~width:r.Netlist.width
            else VD.top ~width:r.Netlist.width ))
        regs
    in
    let step ~widen env =
      List.map
        (fun (r : Netlist.register) ->
          let cur = List.assoc r.Netlist.name env in
          let next =
            try eval nl env [] r.Netlist.next
            with Unresolved -> VD.top ~width:r.Netlist.width
          in
          ( r.Netlist.name,
            if widen then VD.widen ~prev:cur ~next
            else VD.join cur next ))
        regs
    in
    let rec iterate i env =
      let env' = step ~widen:(i >= widen_after) env in
      if List.for_all2 (fun (_, a) (_, b) -> VD.equal a b) env env' then env
      else if i >= max_iterations then all_top ()
      else iterate (i + 1) env'
    in
    Some { nl; env = iterate 0 env0; xregs }

let with_analysis (ctx : Netlist_rules.ctx) f =
  match analyze ~properties:ctx.Netlist_rules.properties ctx.Netlist_rules.nl with
  | None -> []
  | Some a -> f a

(* Sites where a value becomes observable: next-state functions and
   outputs.  Properties join for the X and dead-state scans (they are
   read by the engines) but not for the range scan — arithmetic inside
   a property is the property author widening on purpose. *)
let value_sites (ctx : Netlist_rules.ctx) =
  List.map
    (fun (r : Netlist.register) ->
      ("next(" ^ r.Netlist.name ^ ")", r.Netlist.next))
    (Netlist.registers ctx.Netlist_rules.nl)
  @ List.map
      (fun (n, e) -> ("output " ^ n, e))
      (Netlist.outputs ctx.Netlist_rules.nl)

(* --- net.x-prop -------------------------------------------------------- *)

let rule_x_prop (ctx : Netlist_rules.ctx) =
  with_analysis ctx (fun a ->
      if a.xregs = [] then []
      else
        let mk =
          Netlist_rules.diag ctx ~rule:"net.x-prop" ~severity:D.Warning
        in
        let observable =
          List.map (fun (n, e) -> ("output " ^ n, e)) (Netlist.outputs a.nl)
          @ List.map
              (fun (n, e) -> ("property " ^ n, e))
              ctx.Netlist_rules.properties
        in
        List.filter_map
          (fun (loc, e) ->
            match eval a.nl a.env [] e with
            | exception Unresolved -> None
            | v when VD.is_poison v ->
                let in_cone = Netlist_rules.cone a.nl ~through_regs:true [ e ] in
                let sources =
                  List.filter (fun r -> Hashtbl.mem in_cone r) a.xregs
                in
                Some
                  (mk ~location:loc
                     ~hint:
                       "cover the register with the reset or give it a \
                        defined load path"
                     (Printf.sprintf
                        "may be X after reset: uninitialized register%s %s in \
                         its cone"
                        (if List.length sources = 1 then "" else "s")
                        (String.concat ", " sources)))
            | _ -> None)
          observable)

(* --- net.const-reg ----------------------------------------------------- *)

let const_reg_message name v =
  Printf.sprintf "register '%s' provably holds %d in every reachable cycle"
    name v

let rule_const_reg (ctx : Netlist_rules.ctx) =
  with_analysis ctx (fun a ->
      let mk = Netlist_rules.diag ctx ~rule:"net.const-reg" ~severity:D.Info in
      List.filter_map
        (fun (r : Netlist.register) ->
          match VD.is_const (List.assoc r.Netlist.name a.env) with
          | Some v ->
              Some
                (mk
                   ~location:("register " ^ r.Netlist.name)
                   ~hint:
                     "fold the constant into its readers or drive it with \
                      varying data"
                   (const_reg_message r.Netlist.name v))
          | None -> None)
        (Netlist.registers a.nl))

(* --- net.unreachable-state --------------------------------------------- *)

let rule_unreachable_state (ctx : Netlist_rules.ctx) =
  with_analysis ctx (fun a ->
      let mk =
        Netlist_rules.diag ctx ~rule:"net.unreachable-state"
          ~severity:D.Warning
      in
      let seen = Hashtbl.create 8 in
      let scan (loc, e) =
        let finds = ref [] in
        let rec go (e : Expr.t) =
          (match e with
          | Expr.Binop (Expr.Eq, Expr.Reg r, Expr.Const c)
          | Expr.Binop (Expr.Eq, Expr.Const c, Expr.Reg r) -> (
              let rn = Netlist_rules.base_name r in
              match List.assoc_opt rn a.env with
              | Some v when not (VD.mem (Bitvec.to_int c) v) ->
                  let key = (loc, rn, Bitvec.to_int c) in
                  if not (Hashtbl.mem seen key) then begin
                    Hashtbl.replace seen key ();
                    finds :=
                      mk ~location:loc
                        ~hint:
                          "remove the dead state or fix the transition meant \
                           to reach it"
                        (Printf.sprintf
                           "state test '%s == %d' can never be true: \
                            reachable values %s"
                           rn (Bitvec.to_int c) (VD.to_string v))
                      :: !finds
                  end
              | _ -> ())
          | _ -> ());
          match e with
          | Expr.Const _ | Expr.Input _ | Expr.Reg _ -> ()
          | Expr.Unop (_, x) | Expr.Slice (x, _, _) -> go x
          | Expr.Binop (_, x, y) | Expr.Concat (x, y) ->
              go x;
              go y
          | Expr.Mux (x, y, z) ->
              go x;
              go y;
              go z
        in
        go e;
        List.rev !finds
      in
      List.concat_map scan (Netlist_rules.sites ctx))

(* --- net.range --------------------------------------------------------- *)

type range_site = {
  loc : string;
  idx : int;  (* nth arithmetic node of the site, DFS order *)
  op : Expr.binop;
  lhs : Expr.t;
  rhs : Expr.t;
  va : VD.t;
  vb : VD.t;
  op_width : int;
}

let op_name = function
  | Expr.Add -> "add"
  | Expr.Sub -> "sub"
  | Expr.Mul -> "mul"
  | _ -> assert false

let op_symbol = function
  | Expr.Add -> "+"
  | Expr.Sub -> "-"
  | Expr.Mul -> "*"
  | _ -> assert false

let range_message rs =
  Printf.sprintf "%s #%d may wrap at width %d: %s %s %s" (op_name rs.op)
    rs.idx rs.op_width (VD.to_string rs.va) (op_symbol rs.op)
    (VD.to_string rs.vb)

let range_sites a ctx =
  List.concat_map
    (fun (loc, e) ->
      let acc = ref [] and idx = ref 0 in
      let hook op lhs rhs va vb =
        match op with
        | Expr.Add | Expr.Sub | Expr.Mul ->
            incr idx;
            let wrap =
              match op with
              | Expr.Add -> VD.add_may_wrap va vb
              | Expr.Sub -> VD.sub_may_wrap va vb
              | _ -> VD.mul_may_wrap va vb
            in
            if wrap then
              acc :=
                {
                  loc;
                  idx = !idx;
                  op;
                  lhs;
                  rhs;
                  va;
                  vb;
                  op_width = VD.width va;
                }
                :: !acc
        | _ -> ()
      in
      (try ignore (eval ~hook a.nl a.env [] e) with Unresolved -> ());
      List.rev !acc)
    (value_sites ctx)

let rule_range (ctx : Netlist_rules.ctx) =
  with_analysis ctx (fun a ->
      let mk = Netlist_rules.diag ctx ~rule:"net.range" ~severity:D.Warning in
      List.map
        (fun rs ->
          mk ~location:rs.loc
            ~hint:
              "widen the datapath, guard the operation, or discharge the \
               no-wrap obligation with --escalate"
            (range_message rs))
        (range_sites a ctx))

(* --- proof obligations ------------------------------------------------- *)

type obligation = {
  rule : string;
  location : string;
  message : string;
  prop : Prop.t;
}

(* Replace comb-net reads with their driving expressions so the
   obligation formula is over registers and inputs only — the model
   checker does not resolve output names. *)
let rec inline nl (e : Expr.t) : Expr.t =
  match e with
  | Expr.Const _ | Expr.Input _ -> e
  | Expr.Reg n -> (
      match Netlist.find_register nl (Netlist_rules.base_name n) with
      | Some _ -> e
      | None -> (
          match Netlist.find_output nl n with
          | Some e' -> inline nl e'
          | None -> e))
  | Expr.Unop (u, a) -> Expr.Unop (u, inline nl a)
  | Expr.Binop (op, a, b) -> Expr.Binop (op, inline nl a, inline nl b)
  | Expr.Mux (s, t, f) -> Expr.Mux (inline nl s, inline nl t, inline nl f)
  | Expr.Slice (a, hi, lo) -> Expr.Slice (inline nl a, hi, lo)
  | Expr.Concat (a, b) -> Expr.Concat (inline nl a, inline nl b)

let zext k e = Expr.concat (Expr.const ~width:k 0) e

(* The no-wrap invariant of one arithmetic site, when it fits the word
   size: add — the widened sum's carry bit is 0; sub — no borrow; mul
   — the double-width product's high half is 0. *)
let range_obligation_formula nl rs =
  let w = rs.op_width in
  let a = inline nl rs.lhs and b = inline nl rs.rhs in
  match rs.op with
  | Expr.Add when w + 1 <= Bitvec.max_width ->
      Some
        (Expr.eq
           (Expr.slice (Expr.add (zext 1 a) (zext 1 b)) ~hi:w ~lo:w)
           (Expr.const ~width:1 0))
  | Expr.Sub -> Some (Expr.ule b a)
  | Expr.Mul when 2 * w <= Bitvec.max_width ->
      Some
        (Expr.eq
           (Expr.slice (Expr.mul (zext w a) (zext w b)) ~hi:((2 * w) - 1) ~lo:w)
           (Expr.const ~width:w 0))
  | _ -> None

let obligations (ctx : Netlist_rules.ctx) =
  with_analysis ctx (fun a ->
      let const_obls =
        List.filter_map
          (fun (r : Netlist.register) ->
            match VD.is_const (List.assoc r.Netlist.name a.env) with
            | Some v ->
                Some
                  {
                    rule = "net.const-reg";
                    location = "register " ^ r.Netlist.name;
                    message = const_reg_message r.Netlist.name v;
                    prop =
                      Prop.make
                        ~name:("lint.const-reg." ^ r.Netlist.name)
                        (Expr.eq (Expr.reg r.Netlist.name)
                           (Expr.const ~width:r.Netlist.width v));
                  }
            | None -> None)
          (Netlist.registers a.nl)
      in
      let range_obls =
        List.filter_map
          (fun rs ->
            match range_obligation_formula a.nl rs with
            | None -> None
            | Some f ->
                Some
                  {
                    rule = "net.range";
                    location = rs.loc;
                    message = range_message rs;
                    prop =
                      Prop.make
                        ~name:
                          (Printf.sprintf "lint.range.%s.%d" rs.loc rs.idx)
                        f;
                  })
          (range_sites a ctx)
      in
      const_obls @ range_obls)
