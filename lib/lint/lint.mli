(** The static-analysis pass framework: run rule families over a
    netlist or a reconfiguration program, get one {!report}.

    Rules fan out per-rule on a [Symbad_par] pool under a [Symbad_gov]
    budget slice (one rule = one pattern); the allowance is read once
    before the fan-out, so reports are identical at any [--jobs]
    width.  Rules the governor could not afford are listed in
    [skipped_rules], never silently dropped. *)

module Expr := Symbad_hdl.Expr
module Netlist := Symbad_hdl.Netlist

type report = {
  target : string;  (** netlist / program name *)
  rules_run : string list;
  suppressed : string list;  (** intentionally disabled rule ids *)
  skipped_rules : string list;  (** unaffordable under the governor *)
  diagnostics : Diagnostic.t list;  (** stable order, gravest first *)
}

val netlist_rule_ids : string list
(** The netlist analyzer family, canonical order: [net.width],
    [net.undriven], [net.multi-driven], [net.comb-loop], [net.unused],
    [net.dead-logic], [net.no-reset]. *)

val program_rule_ids : string list
(** The reconfiguration analyzer family, canonical order:
    [cfg.never-loaded], [cfg.maybe-unloaded], [cfg.unknown-config],
    [cfg.redundant-config], [cfg.unreachable-config]. *)

val all_rule_ids : string list

val run_netlist :
  ?pool:Symbad_par.Par.pool ->
  ?gov:Symbad_gov.Gov.t ->
  ?rules:string list ->
  ?suppress:string list ->
  ?properties:(string * Expr.t) list ->
  Netlist.t ->
  report
(** Lint a netlist (checked or [make_unchecked]).  [properties] are
    named width-1 formulas over the netlist's signals (primed register
    reads allowed); they extend the cone of influence and are width-
    and vacuity-checked themselves.  [rules] selects a subset (raises
    [Invalid_argument] on unknown ids); [suppress] disables ids while
    recording the suppression in the report. *)

val run_program :
  ?pool:Symbad_par.Par.pool ->
  ?gov:Symbad_gov.Gov.t ->
  ?rules:string list ->
  ?suppress:string list ->
  ?name:string ->
  Symbad_symbc.Config_info.t ->
  Symbad_symbc.Ast.program ->
  report
(** Lint a reconfiguration program against its configuration
    information ([name] labels the target, default ["program"]). *)

val run_cfg :
  ?pool:Symbad_par.Par.pool ->
  ?gov:Symbad_gov.Gov.t ->
  ?rules:string list ->
  ?suppress:string list ->
  ?name:string ->
  Symbad_symbc.Config_info.t ->
  Symbad_symbc.Cfg.t ->
  report
(** {!run_program} over an already-built (possibly hand-built) CFG. *)

val merge : target:string -> report list -> report
(** Concatenate reports into one (rule lists unioned in first-seen
    order, diagnostics re-sorted). *)

val errors : report -> int
val warnings : report -> int

val count_at_least : Diagnostic.severity -> report -> int
(** Diagnostics at or above the given severity. *)

val to_json : report -> Symbad_obs.Json.t
(** Timing-free by construction: byte-comparable across runs and
    [--jobs] widths. *)

val to_markdown : report -> string
val pp : Format.formatter -> report -> unit
