(** The static-analysis pass framework: run rule families over a
    netlist, a reconfiguration program or a tenant set, get one
    {!report}; escalate residual warnings to the model checker.

    Rules fan out per-rule on a [Symbad_par] pool under a [Symbad_gov]
    budget slice (one rule = one pattern); the allowance is read once
    before the fan-out, so reports are identical at any [--jobs]
    width.  Rules the governor could not afford are listed in
    [skipped_rules], never silently dropped. *)

module Expr := Symbad_hdl.Expr
module Netlist := Symbad_hdl.Netlist

type report = {
  target : string;  (** netlist / program name *)
  rules_run : string list;
  suppressed : string list;  (** intentionally disabled rule ids *)
  skipped_rules : string list;  (** unaffordable under the governor *)
  diagnostics : Diagnostic.t list;  (** {!Diagnostic.order}, gravest first *)
}

val netlist_rule_ids : string list
(** The netlist analyzer family, canonical order: the syntactic rules
    [net.width], [net.undriven], [net.multi-driven], [net.comb-loop],
    [net.unused], [net.dead-logic], [net.no-reset], then the semantic
    (abstract-interpretation) rules [net.x-prop], [net.range],
    [net.unreachable-state], [net.const-reg]. *)

val program_rule_ids : string list
(** The reconfiguration analyzer family, canonical order:
    [cfg.never-loaded], [cfg.maybe-unloaded], [cfg.unknown-config],
    [cfg.redundant-config], [cfg.unreachable-config]. *)

val sched_rule_ids : string list
(** The multi-tenant schedule analyzer family:
    [sched.context-conflict] (an interleaved tenant may reload the
    shared fabric between a tenant's reconfiguration and its call) and
    [sched.wcrt] (static worst-case reconfiguration-time bound vs the
    admission deadline). *)

val all_rule_ids : string list

val run_netlist :
  ?pool:Symbad_par.Par.pool ->
  ?gov:Symbad_gov.Gov.t ->
  ?rules:string list ->
  ?suppress:string list ->
  ?properties:(string * Expr.t) list ->
  Netlist.t ->
  report
(** Lint a netlist (checked or [make_unchecked]).  [properties] are
    named width-1 formulas over the netlist's signals (primed register
    reads allowed); they extend the cone of influence and are width-
    and vacuity-checked themselves.  [rules] selects a subset (raises
    [Invalid_argument] on unknown ids); [suppress] disables ids while
    recording the suppression in the report. *)

val run_program :
  ?pool:Symbad_par.Par.pool ->
  ?gov:Symbad_gov.Gov.t ->
  ?rules:string list ->
  ?suppress:string list ->
  ?name:string ->
  Symbad_symbc.Config_info.t ->
  Symbad_symbc.Ast.program ->
  report
(** Lint a reconfiguration program against its configuration
    information ([name] labels the target, default ["program"]). *)

val run_cfg :
  ?pool:Symbad_par.Par.pool ->
  ?gov:Symbad_gov.Gov.t ->
  ?rules:string list ->
  ?suppress:string list ->
  ?name:string ->
  Symbad_symbc.Config_info.t ->
  Symbad_symbc.Cfg.t ->
  report
(** {!run_program} over an already-built (possibly hand-built) CFG. *)

val run_tenants :
  ?pool:Symbad_par.Par.pool ->
  ?gov:Symbad_gov.Gov.t ->
  ?rules:string list ->
  ?suppress:string list ->
  ?cost_ns:(string -> int) ->
  ?deadline_ns:int ->
  ?name:string ->
  Symbad_symbc.Config_info.t ->
  (string * Symbad_symbc.Ast.program) list ->
  report
(** Admission analysis of a tenant set sharing one fabric: the
    {!sched_rule_ids} family over every tenant pair's interleaved
    product.  [cost_ns] prices one reconfiguration (default 1 ms);
    [deadline_ns] enables [sched.wcrt] — without it only the
    interference rule can fire. *)

val escalate :
  ?pool:Symbad_par.Par.pool ->
  ?gov:Symbad_gov.Gov.t ->
  ?max_depth:int ->
  ?max_conflicts:int ->
  ?properties:(string * Expr.t) list ->
  Netlist.t ->
  report ->
  report
(** Lint-to-proof escalation: every not-yet-discharged diagnostic of
    [report] that carries a definable obligation
    ({!Netlist_absint.obligations}) is dispatched to
    {!Symbad_mc.Engine.check_all} under [gov], and the verdict is
    folded back into the diagnostic as its [discharged] annotation —
    proved demotes to [Info], disproved promotes to [Error] with the
    counterexample trace attached, inconclusive leaves the severity
    unchanged.  Diagnostics are never dropped.  Byte-identical at any
    pool width.

    [max_conflicts] (default 2_000, well below the engine's own
    default) bounds the solver effort per obligation: escalation is a
    lint pass, not the level-4 gate, so an obligation that does not
    settle inside the allowance degrades to an [Inconclusive] discharge
    rather than stalling the report.  Conflict budgets are counted
    deterministically, so the cap preserves byte-identity. *)

val merge : target:string -> report list -> report
(** Concatenate reports into one (rule lists unioned in first-seen
    order, diagnostics re-sorted with {!Diagnostic.order}). *)

val errors : report -> int
val warnings : report -> int

val count_at_least : Diagnostic.severity -> report -> int
(** Diagnostics at or above the given severity. *)

val to_json : report -> Symbad_obs.Json.t
(** Timing-free by construction: byte-comparable across runs and
    [--jobs] widths.  Carries [schema_version]
    ({!Diagnostic.schema_version}) at the top level and on every
    diagnostic. *)

val to_markdown : report -> string
val pp : Format.formatter -> report -> unit
