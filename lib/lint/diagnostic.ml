(* The shared diagnostic currency of the lint passes. *)

module Json = Symbad_obs.Json

(* Bump when the JSON shape of a diagnostic changes incompatibly.
   Version 2: added [schema_version] itself and the [discharged]
   escalation annotation. *)
let schema_version = 2

type severity = Error | Warning | Info

type discharge_status = Proved | Disproved | Inconclusive

type discharge = {
  status : discharge_status;
  detail : string;
  counterexample : string option;
}

type t = {
  rule : string;
  severity : severity;
  target : string;
  location : string;
  message : string;
  hint : string option;
  discharged : discharge option;
}

let make ?hint ?discharged ~rule ~severity ~target ~location message =
  { rule; severity; target; location; message; hint; discharged }

let severity_label = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_of_string = function
  | "error" -> Some Error
  | "warning" -> Some Warning
  | "info" -> Some Info
  | _ -> None

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let discharge_label = function
  | Proved -> "proved"
  | Disproved -> "disproved"
  | Inconclusive -> "inconclusive"

let compare a b =
  let c = Int.compare (severity_rank a.severity) (severity_rank b.severity) in
  if c <> 0 then c
  else
    let c = String.compare a.rule b.rule in
    if c <> 0 then c
    else
      let c = String.compare a.location b.location in
      if c <> 0 then c else String.compare a.message b.message

let order ds = List.stable_sort compare ds

let discharge_to_json g =
  Json.Obj
    ([
       ("status", Json.Str (discharge_label g.status));
       ("detail", Json.Str g.detail);
     ]
    @
    match g.counterexample with
    | None -> []
    | Some cex -> [ ("counterexample", Json.Str cex) ])

let to_json d =
  Json.Obj
    ([
       ("schema_version", Json.Int schema_version);
       ("rule", Json.Str d.rule);
       ("severity", Json.Str (severity_label d.severity));
       ("target", Json.Str d.target);
       ("location", Json.Str d.location);
       ("message", Json.Str d.message);
     ]
    @ (match d.hint with None -> [] | Some h -> [ ("hint", Json.Str h) ])
    @
    match d.discharged with
    | None -> []
    | Some g -> [ ("discharged", discharge_to_json g) ])

let pp fmt d =
  Fmt.pf fmt "%s: %s: %s: %s: %s"
    (severity_label d.severity)
    d.rule d.target d.location d.message;
  (match d.discharged with
  | None -> ()
  | Some g -> Fmt.pf fmt " [discharged: %s, %s]" (discharge_label g.status) g.detail);
  match d.hint with None -> () | Some h -> Fmt.pf fmt " (hint: %s)" h
