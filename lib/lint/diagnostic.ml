(* The shared diagnostic currency of the lint passes. *)

module Json = Symbad_obs.Json

type severity = Error | Warning | Info

type t = {
  rule : string;
  severity : severity;
  target : string;
  location : string;
  message : string;
  hint : string option;
}

let make ?hint ~rule ~severity ~target ~location message =
  { rule; severity; target; location; message; hint }

let severity_label = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_of_string = function
  | "error" -> Some Error
  | "warning" -> Some Warning
  | "info" -> Some Info
  | _ -> None

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let compare a b =
  let c = Int.compare (severity_rank a.severity) (severity_rank b.severity) in
  if c <> 0 then c
  else
    let c = String.compare a.rule b.rule in
    if c <> 0 then c
    else
      let c = String.compare a.location b.location in
      if c <> 0 then c else String.compare a.message b.message

let to_json d =
  Json.Obj
    ([
       ("rule", Json.Str d.rule);
       ("severity", Json.Str (severity_label d.severity));
       ("target", Json.Str d.target);
       ("location", Json.Str d.location);
       ("message", Json.Str d.message);
     ]
    @ match d.hint with None -> [] | Some h -> [ ("hint", Json.Str h) ])

let pp fmt d =
  Fmt.pf fmt "%s: %s: %s: %s: %s"
    (severity_label d.severity)
    d.rule d.target d.location d.message;
  match d.hint with None -> () | Some h -> Fmt.pf fmt " (hint: %s)" h
