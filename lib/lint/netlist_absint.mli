(** Forward abstract interpretation over netlist registers.

    One fixpoint computes, per register, a {!Value_domain} abstraction
    of every value the register can carry in any reachable cycle:
    registers start at their reset value (or X when an explicit reset
    input exists that their next-state cone ignores), inputs are the
    full range every cycle, and the next-state functions are iterated —
    with widening at the sequential back-edge — until stable.

    The fixpoint powers the four semantic rules ([net.x-prop],
    [net.range], [net.unreachable-state], [net.const-reg]) and the
    proof obligations {!Lint.escalate} dispatches to the model checker.
    Only structurally sound netlists are interpreted: a netlist
    {!Symbad_hdl.Netlist.make} would reject yields no findings here —
    the syntactic rules own those defects. *)

type analysis

val analyze :
  ?properties:(string * Symbad_hdl.Expr.t) list ->
  Symbad_hdl.Netlist.t ->
  analysis option
(** [None] when the netlist is not structurally sound. *)

val reg_value : analysis -> string -> Value_domain.t option
(** The register's abstract value at the fixpoint. *)

val x_registers : analysis -> string list
(** Registers modelled as X after reset: an explicit reset-like input
    exists and their next-state cone never reads it. *)

(** {1 The rule implementations} *)

val rule_x_prop : Netlist_rules.ctx -> Diagnostic.t list
val rule_range : Netlist_rules.ctx -> Diagnostic.t list
val rule_unreachable_state : Netlist_rules.ctx -> Diagnostic.t list
val rule_const_reg : Netlist_rules.ctx -> Diagnostic.t list

(** {1 Lint-to-proof obligations} *)

type obligation = {
  rule : string;
  location : string;
  message : string;
      (** [rule]/[location]/[message] key the diagnostic the obligation
          belongs to — byte-identical to the one the rule reported *)
  prop : Symbad_mc.Prop.t;
      (** the residual proof obligation: an invariant whose refutation
          confirms the warning and whose proof discharges it *)
}

val obligations : Netlist_rules.ctx -> obligation list
(** Every definable obligation of the netlist's semantic warnings, in
    deterministic rule order: [net.range] sites small enough to widen
    within {!Symbad_hdl.Bitvec.max_width}, and [net.const-reg]
    constancy claims. *)
