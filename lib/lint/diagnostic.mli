(** The shared diagnostic currency of the lint passes.

    Every rule reports findings in this one shape so reports, verdicts
    and artefacts render uniformly regardless of which analyzer family
    (netlist, reconfiguration or schedule) produced them. *)

val schema_version : int
(** Version of the JSON rendering; every serialized diagnostic carries
    it as [schema_version].  Bumped on incompatible shape changes. *)

type severity = Error | Warning | Info

(** Outcome of a lint-to-proof escalation ({!Lint.escalate}). *)
type discharge_status =
  | Proved  (** the obligation holds: the warning was a false positive *)
  | Disproved  (** refuted with a counterexample: the warning is real *)
  | Inconclusive  (** the engines ran out of budget or depth *)

type discharge = {
  status : discharge_status;
  detail : string;  (** how the verdict was reached, e.g. ["k-induction, depth 3"] *)
  counterexample : string option;  (** rendered trace when disproved *)
}

type t = {
  rule : string;  (** stable rule id, e.g. ["net.comb-loop"] *)
  severity : severity;
  target : string;  (** netlist or program the finding is about *)
  location : string;  (** where inside the target, e.g. ["output ack"] *)
  message : string;
  hint : string option;  (** how to fix it, when the rule knows *)
  discharged : discharge option;  (** escalation verdict, when escalated *)
}

val make :
  ?hint:string ->
  ?discharged:discharge ->
  rule:string ->
  severity:severity ->
  target:string ->
  location:string ->
  string ->
  t

val severity_label : severity -> string
val severity_of_string : string -> severity option

val severity_rank : severity -> int
(** [Error] ranks 0, [Warning] 1, [Info] 2 — lower is graver.  This is
    the one severity ordering; every renderer (lint, report, SARIF)
    sorts by it through {!order}. *)

val discharge_label : discharge_status -> string

val compare : t -> t -> int
(** Severity rank, then rule id, then location, then message — the
    stable report order. *)

val order : t list -> t list
(** The canonical report order: stable sort by {!compare}.  Centralised
    so [symbad lint] and [symbad report] render identically. *)

val to_json : t -> Symbad_obs.Json.t
val pp : Format.formatter -> t -> unit
