(** The shared diagnostic currency of the lint passes.

    Every rule reports findings in this one shape so reports, verdicts
    and artefacts render uniformly regardless of which analyzer family
    (netlist or reconfiguration) produced them. *)

type severity = Error | Warning | Info

type t = {
  rule : string;  (** stable rule id, e.g. ["net.comb-loop"] *)
  severity : severity;
  target : string;  (** netlist or program the finding is about *)
  location : string;  (** where inside the target, e.g. ["output ack"] *)
  message : string;
  hint : string option;  (** how to fix it, when the rule knows *)
}

val make :
  ?hint:string ->
  rule:string ->
  severity:severity ->
  target:string ->
  location:string ->
  string ->
  t

val severity_label : severity -> string
val severity_of_string : string -> severity option

val severity_rank : severity -> int
(** [Error] ranks 0, [Warning] 1, [Info] 2 — lower is graver. *)

val compare : t -> t -> int
(** Severity rank, then rule id, then location, then message — the
    stable report order. *)

val to_json : t -> Symbad_obs.Json.t
val pp : Format.formatter -> t -> unit
