(* Property Coverage Checker.

   "How many properties should the verification engineer define to
   completely check the implementation?" — PCC answers by fault
   injection: a property set is complete when every detectable
   high-level fault makes at least one property fail.  Surviving faults
   witness behaviours no property constrains, i.e. missing properties. *)

module Netlist = Symbad_hdl.Netlist

type fault_status =
  | Covered of string  (* name of a property that fails on the mutant *)
  | Uncovered  (* detectable, but every property still passes *)
  | Undetectable  (* no output difference within the bound *)
  | Unresolved  (* SAT resources exhausted *)

type fault_report = { fault : Fault.t; status : fault_status }

type report = {
  design : string;
  properties : string list;
  faults : fault_report list;
  detectable : int;
  covered : int;
  coverage : float;  (* covered / detectable *)
}

module Gov = Symbad_gov.Gov

(* Does any property fail on [mutant] within [depth] cycles? *)
let first_failing_property ~depth ~max_conflicts ~gov mutant props =
  let rec go = function
    | [] -> None
    | p :: rest -> (
        match Symbad_mc.Bmc.check ~max_conflicts ~gov ~depth mutant p with
        | Symbad_mc.Bmc.Counterexample _ -> Some (Symbad_mc.Prop.name p)
        | Symbad_mc.Bmc.Holds | Symbad_mc.Bmc.Resource_out -> go rest)
  in
  go props

let check_fault ~depth ~max_conflicts ~gov nl props fault =
  if Gov.out_of_budget gov then { fault; status = Unresolved }
  else begin
    (* one pattern per fault classified: the governed unit of PCC work *)
    Gov.charge_patterns gov 1;
    let mutant = Fault.apply nl fault in
    match Miter.detectable ~depth ~max_conflicts ~gov nl mutant with
    | `Undetectable_within _ -> { fault; status = Undetectable }
    | `Resource_out -> { fault; status = Unresolved }
    | `Detectable _ -> (
        match first_failing_property ~depth ~max_conflicts ~gov mutant props with
        | Some name -> { fault; status = Covered name }
        | None -> { fault; status = Uncovered })
  end

let run ?pool ?(depth = 10) ?(max_conflicts = 100_000) ?max_reg_bits ?gov nl
    props =
  let pool = Symbad_par.Par.get pool in
  let gov = Gov.get gov in
  let faults = Fault.enumerate ?max_reg_bits nl in
  (* one job per injected fault: each check builds its own mutant,
     miter and solvers, so the fan-out is pure and the in-order
     reduction makes the parallel report equal the sequential one.
     Each fault gets its budget share before the fan-out, so the
     classification is deterministic at any pool width; exhausted
     shares classify their fault Unresolved — the partial result. *)
  let reports =
    match faults with
    | [] -> []
    | faults ->
        let shares = Gov.split ~label:"pcc.faults" gov (List.length faults) in
        Symbad_par.Par.map ~label:"pcc.faults" pool
          (fun (fault, g) ->
            check_fault ~depth ~max_conflicts ~gov:g nl props fault)
          (List.combine faults shares)
  in
  let detectable =
    List.length
      (List.filter
         (fun r ->
           match r.status with
           | Covered _ | Uncovered -> true
           | Undetectable | Unresolved -> false)
         reports)
  in
  let covered =
    List.length
      (List.filter
         (fun r -> match r.status with Covered _ -> true | _ -> false)
         reports)
  in
  {
    design = Netlist.name nl;
    properties = List.map Symbad_mc.Prop.name props;
    faults = reports;
    detectable;
    covered;
    coverage =
      (if detectable = 0 then 1.
       else float_of_int covered /. float_of_int detectable);
  }

let uncovered_faults report =
  List.filter_map
    (fun r -> match r.status with Uncovered -> Some r.fault | _ -> None)
    report.faults

let pp_status fmt = function
  | Covered p -> Fmt.pf fmt "covered by %s" p
  | Uncovered -> Fmt.string fmt "UNCOVERED"
  | Undetectable -> Fmt.string fmt "undetectable"
  | Unresolved -> Fmt.string fmt "unresolved"

let pp fmt r =
  Fmt.pf fmt "PCC %s: %d properties, %d faults, %d detectable, %d covered (%.0f%%)@."
    r.design (List.length r.properties) (List.length r.faults) r.detectable
    r.covered (100. *. r.coverage);
  List.iter
    (fun fr ->
      match fr.status with
      | Uncovered -> Fmt.pf fmt "  missing property for: %s@." (Fault.to_string fr.fault)
      | Covered _ | Undetectable | Unresolved -> ())
    r.faults
