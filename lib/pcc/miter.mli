(** Miter construction: two netlists over shared inputs with an
    all-outputs-equal comparator; BMC on it decides bounded fault
    detectability. *)

val build : Symbad_hdl.Netlist.t -> Symbad_hdl.Netlist.t -> Symbad_hdl.Netlist.t
(** Requires identical input and output interfaces.  The result exposes
    the comparator as output ["equal"] plus one equality per original
    output. *)

val detectable :
  ?depth:int ->
  ?max_conflicts:int ->
  ?gov:Symbad_gov.Gov.t ->
  Symbad_hdl.Netlist.t ->
  Symbad_hdl.Netlist.t ->
  [ `Detectable of Symbad_mc.Trace.t
  | `Undetectable_within of int
  | `Resource_out ]
(** Is there an input sequence of length <= [depth] (default 10) after
    which the designs disagree on some output?  [gov] bounds the
    underlying BMC run; exhaustion yields [`Resource_out]. *)
