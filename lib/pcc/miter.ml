(* Miter construction: two netlists over the same inputs, with an
   "all outputs equal" comparator.  BMC on the miter decides whether a
   fault is detectable within a bound (some input sequence makes a
   primary output differ). *)

module Expr = Symbad_hdl.Expr
module Netlist = Symbad_hdl.Netlist

let rec rename_regs prefix (e : Expr.t) =
  match e with
  | Expr.Const _ | Expr.Input _ -> e
  | Expr.Reg n -> Expr.Reg (prefix ^ n)
  | Expr.Unop (op, a) -> Expr.Unop (op, rename_regs prefix a)
  | Expr.Binop (op, a, b) ->
      Expr.Binop (op, rename_regs prefix a, rename_regs prefix b)
  | Expr.Mux (s, t, f) ->
      Expr.Mux (rename_regs prefix s, rename_regs prefix t, rename_regs prefix f)
  | Expr.Slice (a, hi, lo) -> Expr.Slice (rename_regs prefix a, hi, lo)
  | Expr.Concat (a, b) -> Expr.Concat (rename_regs prefix a, rename_regs prefix b)

(* Build the miter of [a] and [b]; they must have identical input and
   output interfaces.  Output ["equal"] is 1 iff all outputs agree. *)
let build a b =
  if Netlist.inputs a <> Netlist.inputs b then
    invalid_arg "Miter.build: input interfaces differ";
  if List.map fst (Netlist.outputs a) <> List.map fst (Netlist.outputs b) then
    invalid_arg "Miter.build: output interfaces differ";
  let copy prefix nl =
    List.map
      (fun (r : Netlist.register) ->
        {
          r with
          Netlist.name = prefix ^ r.Netlist.name;
          next = rename_regs prefix r.Netlist.next;
        })
      (Netlist.registers nl)
  in
  let comparisons =
    List.map2
      (fun (n, ea) (_, eb) ->
        (n, Expr.eq (rename_regs "g$" ea) (rename_regs "f$" eb)))
      (Netlist.outputs a) (Netlist.outputs b)
  in
  let equal_expr =
    List.fold_left
      (fun acc (_, e) -> Expr.and_ acc e)
      (Expr.const ~width:1 1) comparisons
  in
  Netlist.make
    ~name:(Printf.sprintf "miter(%s,%s)" (Netlist.name a) (Netlist.name b))
    ~inputs:(Netlist.inputs a)
    ~registers:(copy "g$" a @ copy "f$" b)
    ~outputs:(("equal", equal_expr) :: comparisons)

(* Is there an input sequence of length <= depth after which the two
   designs disagree on some output? *)
let detectable ?(depth = 10) ?(max_conflicts = 100_000) ?gov a b =
  let m = build a b in
  let prop =
    Symbad_mc.Prop.make ~name:"outputs_equal"
      (match Netlist.find_output m "equal" with
      | Some e -> e
      | None -> assert false)
  in
  match Symbad_mc.Bmc.check ~max_conflicts ?gov ~depth m prop with
  | Symbad_mc.Bmc.Counterexample tr -> `Detectable tr
  | Symbad_mc.Bmc.Holds -> `Undetectable_within depth
  | Symbad_mc.Bmc.Resource_out -> `Resource_out
