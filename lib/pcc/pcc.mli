(** The Property Coverage Checker.

    A property set is complete when every detectable high-level fault
    makes at least one property fail; surviving faults witness
    behaviours no property constrains — missing properties. *)

type fault_status =
  | Covered of string  (** name of a property failing on the mutant *)
  | Uncovered  (** detectable, yet every property passes: a gap *)
  | Undetectable  (** no output difference within the bound *)
  | Unresolved
      (** resource budget exhausted — the SAT conflict allowance or the
          governor's deadline/allowance — before the fault could be
          classified *)

type fault_report = { fault : Fault.t; status : fault_status }

type report = {
  design : string;
  properties : string list;
  faults : fault_report list;
  detectable : int;
  covered : int;
  coverage : float;  (** covered / detectable *)
}

val run :
  ?pool:Symbad_par.Par.pool ->
  ?depth:int ->
  ?max_conflicts:int ->
  ?max_reg_bits:int ->
  ?gov:Symbad_gov.Gov.t ->
  Symbad_hdl.Netlist.t ->
  Symbad_mc.Prop.t list ->
  report
(** Fault detectability checks run one job per fault on [pool]
    (sequential when omitted); the report is identical at any pool
    width.

    [gov]'s remaining budget is split across the faults before the
    fan-out (one pattern charged per fault classified); faults whose
    share is exhausted are reported [Unresolved], so an expired budget
    still yields a full report listing what was classified — the
    partial result. *)

val uncovered_faults : report -> Fault.t list
(** The faults demanding new properties. *)

val pp_status : Format.formatter -> fault_status -> unit
val pp : Format.formatter -> report -> unit
